"""Incremental sweep synthesis: bit-exact equivalence with scratch.

:mod:`repro.synth.sweep` is a perf optimization with a hard contract —
every derived truncated variant must be *content-fingerprint identical*
to an independent from-scratch ``synthesize()`` of the explicitly
truncated component, with float-equal delay/area/leakage. These tests
hold it to that contract across component families, efforts and
precisions, and cover the satellites that ride along: canonical sizing
order, per-pass metrics, the per-process base memo and the
characterize/verify wiring.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import default_library
from repro.core import characterize
from repro.core.cache import netlist_fingerprint
from repro.core.specs import parse_component
from repro.obs import metrics as obs_metrics
from repro.synth import (SweepSynthesis, clear_sweep_memo, sweep_for,
                         synthesize, synthesize_variant,
                         upsize_critical_paths)
from repro.synth.sweep import SweepFallback
from repro.verify import check_synth_sweep


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(autouse=True)
def _fresh_sweep_memo():
    clear_sweep_memo()
    yield
    clear_sweep_memo()


def assert_point_identical(derived, scratch, label):
    assert netlist_fingerprint(derived.netlist) \
        == netlist_fingerprint(scratch.netlist), label
    assert derived.delay_ps == scratch.delay_ps, label
    assert derived.area_um2 == scratch.area_um2, label
    assert derived.leakage_nw == scratch.leakage_nw, label
    assert derived.final_gates == scratch.final_gates, label


class TestReplayMatchesScratch:
    @pytest.mark.parametrize("spec", ["adder8", "mult8", "mac4", "csel8"])
    @pytest.mark.parametrize("effort", ["low", "medium", "ultra"])
    def test_families(self, lib, spec, effort):
        component = parse_component(spec)
        with obs_metrics.scoped() as registry:
            sweep = SweepSynthesis(component, lib, effort=effort)
            width = component.width
            for precision in range(width, max(width - 4, 1) - 1, -1):
                derived = sweep.derive(precision)
                scratch = synthesize(component.with_precision(precision),
                                     lib, effort=effort)
                assert_point_identical(
                    derived, scratch, "%s p=%d %s" % (spec, precision,
                                                      effort))
            counters = registry.snapshot()["counters"]
        assert counters.get(obs_metrics.SYNTH_SWEEP_FALLBACKS, 0) == 0

    def test_full_precision_is_base(self, lib):
        component = parse_component("adder8")
        sweep = SweepSynthesis(component, lib, effort="medium")
        assert sweep.derive(8) is sweep.base_result

    def test_target_ps_sizing_path(self, lib):
        """Sized-to-target derivations stay bit-identical too."""
        component = parse_component("adder8")
        target = 120.0
        sweep = SweepSynthesis(component, lib, effort="ultra",
                               target_ps=target)
        for precision in (7, 5):
            derived = sweep.derive(precision)
            scratch = synthesize(component.with_precision(precision),
                                 lib, effort="ultra", target_ps=target)
            assert_point_identical(derived, scratch, "p=%d" % precision)

    def test_derivation_is_memoized(self, lib):
        component = parse_component("adder8")
        sweep = SweepSynthesis(component, lib, effort="medium")
        assert sweep.derive(6) is sweep.derive(6)
        sweep.clear_derived()
        again = sweep.derive(6)
        assert again is sweep.derive(6)

    def test_fallback_counts_and_still_answers(self, lib, monkeypatch):
        component = parse_component("adder8")
        sweep = SweepSynthesis(component, lib, effort="medium")

        def boom(precision):
            raise SweepFallback("forced by test")

        monkeypatch.setattr(sweep, "_derive", boom)
        with obs_metrics.scoped() as registry:
            derived = sweep.derive(6)
            counters = registry.snapshot()["counters"]
        assert counters.get(obs_metrics.SYNTH_SWEEP_FALLBACKS) == 1
        scratch = synthesize(component.with_precision(6), lib,
                             effort="medium")
        assert_point_identical(derived, scratch, "fallback path")


@given(spec=st.sampled_from(["adder", "rca", "multiplier", "mac"]),
       width=st.integers(min_value=4, max_value=8),
       effort=st.sampled_from(["low", "medium", "high", "ultra"]),
       data=st.data())
@settings(max_examples=25, deadline=None)
def test_sweep_equals_scratch_property(spec, width, effort, data):
    """Property: any (family, width, effort, precision) derives a
    variant fingerprint-identical to from-scratch synthesis."""
    lib = default_library()
    component = parse_component(spec, width=width)
    precision = data.draw(
        st.integers(min_value=max(1, width - 3), max_value=width),
        label="precision")
    sweep = sweep_for(component, lib, effort=effort)
    derived = sweep.derive(precision)
    scratch = synthesize(component.with_precision(precision), lib,
                         effort=effort)
    assert_point_identical(
        derived, scratch, "%s w=%d p=%d %s" % (spec, width, precision,
                                               effort))


class TestSizingCanonicalOrder:
    def test_permuted_insertion_order_sizes_identically(self, lib):
        """The upsize order is a function of netlist content, not of
        gate-list insertion order."""
        component = parse_component("adder8")
        result = synthesize(component, lib, effort="high")  # unsized
        first = result.netlist.copy()
        second = result.netlist.copy()
        second.gates = list(reversed(second.gates))
        second._topo_cache = None

        upsize_critical_paths(first, lib, target_ps=0.0, max_rounds=6)
        upsize_critical_paths(second, lib, target_ps=0.0, max_rounds=6)
        cells_first = {g.uid: g.cell for g in first.gates}
        cells_second = {g.uid: g.cell for g in second.gates}
        assert cells_first == cells_second


class TestMetrics:
    def test_sweep_metrics_recorded(self, lib):
        component = parse_component("adder8")
        with obs_metrics.scoped() as registry:
            synthesize_variant(component, 6, lib, effort="ultra")
            snap = registry.snapshot()
        counters = snap["counters"]
        assert counters.get(obs_metrics.SYNTH_SWEEP_DERIVES) == 1
        assert counters.get(obs_metrics.SYNTH_CONSTPROP_REWRITES, 0) > 0
        assert counters.get(obs_metrics.SYNTH_DEAD_GATES, 0) > 0
        assert counters.get(obs_metrics.SYNTH_SIZING_ROUNDS, 0) > 0
        assert obs_metrics.SYNTH_SWEEP_CONE_GATES in snap["histograms"]
        cone = snap["histograms"][obs_metrics.SYNTH_SWEEP_CONE_GATES]
        assert cone["count"] == 1 and cone["sum"] > 0

    def test_scalar_sizing_metrics_recorded(self, lib):
        component = parse_component("adder8")
        with obs_metrics.scoped() as registry:
            synthesize(component, lib, effort="ultra")
            counters = registry.snapshot()["counters"]
        assert counters.get(obs_metrics.SYNTH_SIZING_ROUNDS, 0) > 0
        assert counters.get(obs_metrics.SYNTH_SIZING_UPSIZES, 0) > 0


class TestProcessMemo:
    def test_sweep_for_memoizes_base(self, lib):
        component = parse_component("mult8")
        with obs_metrics.scoped() as registry:
            first = sweep_for(component, lib, effort="medium")
            second = sweep_for(component.with_precision(5), lib,
                               effort="medium")
            counters = registry.snapshot()["counters"]
        assert first is second
        assert counters.get(obs_metrics.SYNTH_SWEEP_BASE_MEMO_HITS) == 1
        assert sweep_for(component, lib, effort="ultra") is not first

    def test_synthesize_variant_drop_in(self, lib):
        component = parse_component("mult8")
        derived = synthesize_variant(component, 5, lib, effort="medium")
        scratch = synthesize(component.with_precision(5), lib,
                             effort="medium")
        assert_point_identical(derived, scratch, "synthesize_variant")


class TestCharacterizeWiring:
    def test_characterize_sweep_equals_scratch(self, lib):
        from repro.aging import worst_case
        component = parse_component("adder8")
        scenarios = [worst_case(10.0)]
        kwargs = dict(scenarios=scenarios, precisions=[8, 7, 6],
                      effort="ultra", cache=None)
        swept = characterize(component, lib, synth="sweep", **kwargs)
        scratch = characterize(component, lib, synth="scratch", **kwargs)
        assert swept.fresh_ps == scratch.fresh_ps
        assert swept.aged_ps == scratch.aged_ps
        assert swept.area_um2 == scratch.area_um2
        assert swept.leakage_nw == scratch.leakage_nw
        assert swept.gates == scratch.gates
        assert swept.depth == scratch.depth

    def test_characterize_rejects_unknown_synth(self, lib):
        from repro.aging import worst_case
        with pytest.raises(ValueError, match="synth"):
            characterize(parse_component("adder8"), lib,
                         scenarios=[worst_case(10.0)], synth="magic",
                         cache=None)

    def test_point_key_is_synth_independent(self, lib):
        """Sweep and scratch share cache entries — the fingerprint must
        not depend on the synthesis strategy."""
        from repro.aging import worst_case
        from repro.core.characterize import make_point_task, scenario_specs
        component = parse_component("adder8")
        specs = scenario_specs([worst_case(10.0)])
        a = make_point_task(component, 6, lib, specs, synth="sweep")
        b = make_point_task(component, 6, lib, specs, synth="scratch")
        assert a["key"] == b["key"]
        assert a["synth"] == "sweep" and b["synth"] == "scratch"


class TestVerifyInvariant:
    def test_check_synth_sweep_passes(self, lib):
        component = parse_component("adder8")
        results = check_synth_sweep(component, lib, efforts=("ultra",),
                                    precisions=[8, 7, 5])
        assert [r.name for r in results] == ["synth_sweep_bit_exact",
                                             "synth_sweep_no_fallback"]
        assert all(r.passed for r in results), \
            [(r.name, r.detail) for r in results]
