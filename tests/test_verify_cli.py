"""CLI coverage for the ``verify`` subcommand and the hardened failure
paths: every operator mistake exits non-zero with a one-line
diagnostic on stderr — never a traceback.
"""

import json

import pytest

from repro.cli import (COMPONENT_ALIASES, _parse_scenario, build_parser,
                       main)

pytestmark = pytest.mark.verify


class TestScenarioParsing:
    @pytest.mark.parametrize("spec", ["worst10y", "10y_worst",
                                      "worst-10", "10_worst"])
    def test_spellings_of_worst_ten_years(self, spec):
        scenario = _parse_scenario(spec)
        assert scenario.label == "10y_worst"

    def test_balance_and_fresh(self):
        assert _parse_scenario("balance1y").label == "1y_balance"
        assert _parse_scenario("fresh").label == "fresh"

    def test_fractional_years(self):
        assert _parse_scenario("worst2.5y").label == "2.5y_worst"

    def test_rejects_garbage(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            _parse_scenario("sometimes")


class TestVerifyParser:
    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.command == "verify"
        assert args.scenario == "worst1y,worst10y,balance10y"
        assert args.vectors == 96
        assert args.fuzz == 0
        assert args.seed == 20170618

    def test_compact_component_spec(self):
        # "mult16" == --component multiplier --width 16 via aliases.
        assert COMPONENT_ALIASES["mult"] == "multiplier"
        args = build_parser().parse_args(
            ["verify", "--component", "mult16"])
        assert args.component == "mult16"


class TestVerifyCommand:
    def test_small_adder_passes(self, capsys):
        code = main(["verify", "--component", "add6", "--scenario",
                     "worst10y", "--vectors", "24", "--sweep-bits", "2",
                     "--event-cap", "8", "--effort", "high"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: PASS" in out
        assert "golden" in out
        assert "bytes/packed/event/timed" in out

    def test_fuzz_and_corpus_flags(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        code = main(["verify", "--component", "add4", "--scenario",
                     "worst10y", "--vectors", "12", "--sweep-bits", "1",
                     "--event-cap", "8", "--effort", "high",
                     "--fuzz", "4", "--corpus", str(corpus)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz: 4 netlists" in out
        saved = list(corpus.glob("fuzz_*.json"))
        assert saved
        data = json.loads(saved[0].read_text())
        assert data["schema"] == "repro.verify.netlist/1"


class TestFailurePaths:
    def _assert_one_line_error(self, capsys, needle):
        captured = capsys.readouterr()
        assert needle in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_unknown_component(self, capsys):
        code = main(["verify", "--component", "divider8"])
        assert code == 2
        self._assert_one_line_error(capsys, "unknown component")

    def test_unknown_scenario(self, capsys):
        code = main(["verify", "--component", "add6", "--scenario",
                     "sometimes"])
        assert code == 2
        self._assert_one_line_error(capsys, "unknown scenario")

    def test_empty_scenario_list(self, capsys):
        code = main(["verify", "--component", "add6", "--scenario",
                     " , "])
        assert code == 2
        self._assert_one_line_error(capsys, "no scenarios given")

    def test_missing_cache_dir(self, capsys, tmp_path):
        missing = tmp_path / "no" / "such" / "dir"
        code = main(["verify", "--component", "add6", "--cache-dir",
                     str(missing)])
        assert code == 2
        self._assert_one_line_error(capsys, "does not exist")

    def test_missing_cache_dir_other_commands(self, capsys, tmp_path):
        missing = tmp_path / "gone"
        code = main(["timing", "--component", "adder", "--width", "6",
                     "--cache-dir", str(missing)])
        assert code == 2
        self._assert_one_line_error(capsys, "does not exist")
