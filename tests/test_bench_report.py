"""Tests for the benchmark-trajectory regression gate
(``repro bench-report``).

Covers trajectory loading (schema 2 and legacy single-run), floor
selection (explicit ``min_*`` vs trajectory-derived vs no-history),
target annotation, the synthetic-regression failure mode the CI gate
exists for, and the CLI subcommand — including a run over the
repository's own committed BENCH files, which must pass.
"""

import json
import os

import pytest

from repro.bench_report import (DEFAULT_TOLERANCE, analyze_trajectory,
                                bench_report_text, default_paths,
                                load_trajectory, run_report,
                                speedup_fields)
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_doc(tmp_path, runs, name="demo", filename=None):
    path = str(tmp_path / (filename or ("BENCH_%s.json" % name)))
    with open(path, "w") as handle:
        json.dump({"schema": "repro.bench/2", "benchmark": name,
                   "runs": runs}, handle)
    return path


class TestLoading:
    def test_trajectory_schema(self, tmp_path):
        path = write_doc(tmp_path, [{"x_speedup": 2.0}])
        doc = load_trajectory(path)
        assert doc["benchmark"] == "demo"
        assert doc["runs"] == [{"x_speedup": 2.0}]

    def test_legacy_single_run_wraps(self, tmp_path):
        path = str(tmp_path / "BENCH_old.json")
        with open(path, "w") as handle:
            json.dump({"benchmark": "old", "x_speedup": 3.0}, handle)
        doc = load_trajectory(path)
        assert doc["benchmark"] == "old" and len(doc["runs"]) == 1

    def test_name_falls_back_to_filename(self, tmp_path):
        path = write_doc(tmp_path, [{"x_speedup": 1.0}], name=None,
                         filename="BENCH_nameless.json")
        assert load_trajectory(path)["benchmark"] == "nameless"

    def test_speedup_fields_excludes_floors_and_targets(self):
        run = {"mix_speedup": 5.0, "min_mix_speedup": 3.0,
               "target_mix_speedup": 10.0, "warm_speedup": 2.0,
               "wall_s": 1.2, "note_speedup": "n/a"}
        assert speedup_fields(run) == ["mix_speedup", "warm_speedup"]


class TestFloors:
    def test_explicit_min_wins(self, tmp_path):
        runs = [{"x_speedup": 9.0},
                {"x_speedup": 4.0, "min_x_speedup": 3.5}]
        (row,) = analyze_trajectory(load_trajectory(
            write_doc(tmp_path, runs)))
        assert row["floor"] == 3.5 and row["ok"] is True
        assert "explicit" in row["floor_source"]

    def test_trajectory_floor_with_tolerance(self, tmp_path):
        runs = [{"x_speedup": 10.0}, {"x_speedup": 8.0},
                {"x_speedup": 7.0}]
        (row,) = analyze_trajectory(load_trajectory(
            write_doc(tmp_path, runs)))
        # floor = min(prior) * (1 - tolerance) = 8.0 * 0.8 = 6.4
        assert row["floor"] == pytest.approx(
            8.0 * (1 - DEFAULT_TOLERANCE))
        assert row["ok"] is True

    def test_no_history_is_vacuously_ok(self, tmp_path):
        (row,) = analyze_trajectory(load_trajectory(
            write_doc(tmp_path, [{"x_speedup": 0.01}])))
        assert row["floor"] is None and row["ok"] is True
        assert row["floor_source"] == "no history"

    def test_regression_detected(self, tmp_path):
        runs = [{"x_speedup": 10.0}, {"x_speedup": 2.0}]
        (row,) = analyze_trajectory(load_trajectory(
            write_doc(tmp_path, runs)))
        assert row["ok"] is False
        assert row["latest"] == 2.0
        assert row["floor"] == pytest.approx(8.0)

    def test_targets_annotate_but_never_gate(self, tmp_path):
        runs = [{"x_speedup": 3.0, "target_x_speedup": 10.0}]
        (row,) = analyze_trajectory(load_trajectory(
            write_doc(tmp_path, runs)))
        assert row["target"] == 10.0 and row["target_met"] is False
        assert row["ok"] is True  # unmet target is not a regression


class TestRunReport:
    def test_check_fails_on_synthetic_regression(self, tmp_path, capsys):
        path = write_doc(tmp_path, [{"x_speedup": 10.0},
                                    {"x_speedup": 1.0}])
        assert run_report([path], check=True) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "REGRESSED" in out

    def test_without_check_regressions_are_informational(self, tmp_path,
                                                         capsys):
        path = write_doc(tmp_path, [{"x_speedup": 10.0},
                                    {"x_speedup": 1.0}])
        assert run_report([path], check=False) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_committed_bench_files_pass_the_gate(self, capsys):
        """Acceptance: the repository's own BENCH_*.json trajectories
        must pass ``bench-report --check`` (CI runs exactly this)."""
        paths = default_paths(REPO_ROOT)
        assert paths, "no committed BENCH_*.json found"
        assert run_report(paths, check=True) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_empty_report_text(self):
        assert bench_report_text([]).startswith("bench-report:")


class TestCLI:
    def test_cli_check_passes_on_committed_files(self, capsys):
        paths = default_paths(REPO_ROOT)
        assert cli_main(["bench-report", "--check"] + paths) == 0
        assert "regression" in capsys.readouterr().out

    def test_cli_check_fails_on_regression(self, tmp_path, capsys):
        path = write_doc(tmp_path, [{"x_speedup": 10.0},
                                    {"x_speedup": 1.0}])
        assert cli_main(["bench-report", "--check", path]) == 1

    def test_cli_tolerance_flag(self, tmp_path, capsys):
        # 6.0 vs prior 7.0 regresses at 5% tolerance, passes at 20%.
        runs = [{"x_speedup": 7.0}, {"x_speedup": 6.0}]
        path = write_doc(tmp_path, runs)
        assert cli_main(["bench-report", "--check",
                         "--tolerance", "0.05", path]) == 1
        capsys.readouterr()
        assert cli_main(["bench-report", "--check",
                         "--tolerance", "0.2", path]) == 0
