"""Unit tests for the structural netlist builder.

Every primitive is verified against its truth table by running the
vectorized functional simulator over all input combinations.
"""

import itertools

import numpy as np
import pytest

from repro.netlist import CONST0, CONST1, NetlistBuilder
from repro.sim import compile_netlist, evaluate


def truth_table(lib, build, n_inputs):
    """Evaluate a 1-output circuit on all input combinations."""
    builder = NetlistBuilder(name="tt")
    pis = builder.inputs(n_inputs, "x")
    out = build(builder, pis)
    net = builder.outputs([out])
    rows = np.array(list(itertools.product((0, 1), repeat=n_inputs)),
                    dtype=np.uint8)
    result = evaluate(compile_netlist(net, lib), rows)
    return {tuple(int(v) for v in row): int(result[i, 0])
            for i, row in enumerate(rows)}


@pytest.mark.parametrize("method,n,func", [
    ("inv", 1, lambda x: 1 - x[0]),
    ("buf", 1, lambda x: x[0]),
    ("nand2", 2, lambda x: 1 - (x[0] & x[1])),
    ("nor2", 2, lambda x: 1 - (x[0] | x[1])),
    ("and2", 2, lambda x: x[0] & x[1]),
    ("or2", 2, lambda x: x[0] | x[1]),
    ("xor2", 2, lambda x: x[0] ^ x[1]),
    ("xnor2", 2, lambda x: 1 - (x[0] ^ x[1])),
    ("mux2", 3, lambda x: x[1] if x[2] else x[0]),
    ("aoi21", 3, lambda x: 1 - ((x[0] & x[1]) | x[2])),
    ("oai21", 3, lambda x: 1 - ((x[0] | x[1]) & x[2])),
])
def test_primitive_truth_tables(lib, method, n, func):
    table = truth_table(lib, lambda b, pis: getattr(b, method)(*pis), n)
    for combo, got in table.items():
        assert got == func(combo), "%s%r" % (method, combo)


class TestTrees:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_and_tree(self, lib, width):
        table = truth_table(lib, lambda b, pis: b.and_tree(pis), width)
        for combo, got in table.items():
            assert got == int(all(combo))

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_or_tree(self, lib, width):
        table = truth_table(lib, lambda b, pis: b.or_tree(pis), width)
        for combo, got in table.items():
            assert got == int(any(combo))

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_xor_tree(self, lib, width):
        table = truth_table(lib, lambda b, pis: b.xor_tree(pis), width)
        for combo, got in table.items():
            assert got == sum(combo) % 2

    def test_empty_trees_return_identity(self):
        builder = NetlistBuilder()
        assert builder.and_tree([]) == CONST1
        assert builder.or_tree([]) == CONST0
        assert builder.xor_tree([]) == CONST0

    def test_single_net_tree_is_passthrough(self):
        builder = NetlistBuilder()
        a = builder.inputs(1, "a")[0]
        assert builder.and_tree([a]) == a
        assert builder.netlist.num_gates == 0


class TestArithmeticBricks:
    def test_half_adder_truth_table(self, lib):
        builder = NetlistBuilder(name="ha")
        a, b = builder.inputs(2, "x")
        s, c = builder.half_adder(a, b)
        net = builder.outputs([s, c])
        rows = np.array(list(itertools.product((0, 1), repeat=2)),
                        dtype=np.uint8)
        out = evaluate(compile_netlist(net, lib), rows)
        for i, (x, y) in enumerate(rows):
            assert int(out[i, 0]) == (x ^ y)
            assert int(out[i, 1]) == (x & y)

    def test_full_adder_truth_table(self, lib):
        builder = NetlistBuilder(name="fa")
        a, b, cin = builder.inputs(3, "x")
        s, c = builder.full_adder(a, b, cin)
        net = builder.outputs([s, c])
        rows = np.array(list(itertools.product((0, 1), repeat=3)),
                        dtype=np.uint8)
        out = evaluate(compile_netlist(net, lib), rows)
        for i, (x, y, z) in enumerate(rows):
            total = int(x) + int(y) + int(z)
            assert int(out[i, 0]) == total % 2
            assert int(out[i, 1]) == total // 2


class TestDrive:
    def test_builder_drive_selects_cell_variant(self):
        builder = NetlistBuilder(name="d", drive=2)
        a = builder.inputs(1, "a")[0]
        builder.inv(a)
        assert builder.netlist.gates[0].cell == "INV_X2"
