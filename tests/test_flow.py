"""Tests for the end-to-end flows (guardband removal, baseline compare)."""

import pytest

from repro.aging import balance_case, worst_case
from repro.core import (AgingApproximationLibrary, Block, Microarchitecture,
                        compare_with_baseline, design_delay_ps,
                        remove_guardband)
from repro.rtl import Adder, Multiplier


def mini_micro(width=10):
    return Microarchitecture("mini", [
        Block(name="mult", component=Multiplier(width), instances=2),
        Block(name="acc", component=Adder(width), instances=1),
    ])


@pytest.fixture(scope="module")
def report(lib):
    return remove_guardband(mini_micro(), lib, worst_case(10),
                            report_scenarios=[worst_case(1),
                                              balance_case(10)],
                            effort="high")


class TestRemoveGuardband:
    def test_constraint_positive(self, report):
        assert report.constraint_ps > 0

    def test_all_scenarios_tabulated(self, report):
        expected = {"fresh", "10y_worst", "1y_worst", "10y_balance"}
        assert set(report.original_delays_ps) == expected
        assert set(report.approximated_delays_ps) == expected

    def test_original_design_violates(self, report):
        assert report.original_delays_ps["10y_worst"] > \
            report.constraint_ps

    def test_approximated_design_meets_everywhere(self, report):
        assert report.meets_constraint
        for delay in report.approximated_delays_ps.values():
            assert delay <= report.constraint_ps * (1 + 1e-9)

    def test_fresh_approximated_is_faster(self, report):
        assert report.approximated_delays_ps["fresh"] < \
            report.original_delays_ps["fresh"]

    def test_outcome_embedded(self, report):
        assert report.outcome.validated
        assert report.outcome.decisions["mult"].approximated

    def test_reuses_supplied_library(self, lib):
        store = AgingApproximationLibrary()
        remove_guardband(mini_micro(), lib, worst_case(10),
                         approx_library=store, effort="high")
        assert len(store) >= 1


class TestDesignDelay:
    def test_design_delay_is_max_block(self, lib):
        micro = mini_micro()
        micro.synthesize(lib, effort="high")
        from repro.sta import critical_path_delay
        expected = max(critical_path_delay(b.netlist, lib)
                       for b in micro.blocks)
        assert design_delay_ps(micro, lib, effort="high") == \
            pytest.approx(expected)

    def test_design_delay_grows_with_age(self, lib):
        micro = mini_micro()
        fresh = design_delay_ps(micro, lib, effort="high")
        aged = design_delay_ps(micro, lib, worst_case(10), effort="high")
        assert aged > fresh


class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def comparison(self, lib, report):
        return compare_with_baseline(mini_micro(), report.outcome, lib,
                                     worst_case(10), effort="high",
                                     activity_count=128)

    def test_reports_have_consistent_clocks(self, comparison, report):
        assert comparison.ours.clock_ps == pytest.approx(
            report.constraint_ps)
        assert comparison.baseline.clock_ps >= comparison.ours.clock_ps

    def test_paper_direction_of_savings(self, comparison):
        ratios = comparison.ratios
        # Fig. 8(c): ours is faster, smaller, cheaper on every axis.
        assert ratios["frequency"] >= 1.0
        assert ratios["area"] < 1.0
        assert ratios["leakage"] < 1.0
        assert ratios["energy"] < 1.0

    def test_baseline_guardband_nonnegative(self, comparison):
        assert comparison.baseline_guardband_ps >= 0.0

    def test_power_reports_positive(self, comparison):
        for rep in (comparison.ours, comparison.baseline):
            assert rep.area_um2 > 0
            assert rep.leakage_nw > 0
            assert rep.dynamic_uw > 0
