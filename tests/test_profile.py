"""Tests for the wall-clock sampling profiler (repro.obs.profile).

Covers sample collection over busy threads, collapsed-stack output
(flamegraph format), Chrome flame-chart export validity, the text
report, and metric accounting — all pure stdlib, no process forks.
"""

import json
import threading
import time

from repro.obs import metrics as obs_metrics
from repro.obs.profile import SamplingProfiler


def busy_wait_for_profiler(stop_event):
    """A distinctively-named frame the profiler should catch."""
    while not stop_event.is_set():
        sum(range(500))


def profile_busy_thread(seconds=0.2, **kwargs):
    stop_event = threading.Event()
    thread = threading.Thread(target=busy_wait_for_profiler,
                              args=(stop_event,), daemon=True)
    thread.start()
    profiler = SamplingProfiler(interval=0.002, **kwargs)
    try:
        profiler.start()
        time.sleep(seconds)
        profiler.stop()
    finally:
        stop_event.set()
        thread.join()
    return profiler


class TestSampling:
    def test_collects_samples_from_busy_thread(self):
        profiler = profile_busy_thread()
        assert profiler.sample_count() > 10
        assert profiler.duration() > 0.1
        collapsed = profiler.collapsed()
        assert "busy_wait_for_profiler" in collapsed

    def test_collapsed_format(self):
        profiler = profile_busy_thread()
        counts = []
        for line in profiler.collapsed().splitlines():
            stack, __sep, count = line.rpartition(" ")
            assert stack and count.isdigit()
            # Frames are "func (file.py:line)" joined by semicolons.
            assert "(" in stack.split(";")[-1]
            counts.append(int(count))
        assert counts == sorted(counts, reverse=True)
        # Every sample contributes one stack per sampled thread.
        assert sum(counts) >= profiler.sample_count()

    def test_write_collapsed(self, tmp_path):
        profiler = profile_busy_thread()
        path = str(tmp_path / "profile.folded")
        profiler.write_collapsed(path)
        with open(path) as handle:
            text = handle.read()
        assert text == profiler.collapsed() + "\n" or \
            text.rstrip("\n") == profiler.collapsed().rstrip("\n")

    def test_context_manager(self):
        stop_event = threading.Event()
        thread = threading.Thread(target=busy_wait_for_profiler,
                                  args=(stop_event,), daemon=True)
        thread.start()
        try:
            with SamplingProfiler(interval=0.002) as profiler:
                time.sleep(0.1)
        finally:
            stop_event.set()
            thread.join()
        assert profiler.sample_count() > 0

    def test_registry_accounting(self):
        reg = obs_metrics.MetricsRegistry()
        profiler = profile_busy_thread(registry=reg)
        assert reg.value(obs_metrics.OBS_PROFILE_SAMPLES) == \
            profiler.sample_count()


class TestChromeExport:
    def test_events_are_valid_flame_chart(self, tmp_path):
        profiler = profile_busy_thread()
        events = profiler.chrome_events()
        assert events, "no chrome events emitted"
        meta = [e for e in events if e.get("ph") == "M"]
        frames = [e for e in events if e.get("ph") == "X"]
        assert meta and frames
        for event in frames:
            assert event["dur"] > 0
            assert event["ts"] >= 0
            assert isinstance(event["name"], str) and event["name"]
        assert any("busy_wait_for_profiler" in e["name"] for e in frames)

        path = str(tmp_path / "profile.chrome.json")
        profiler.write_chrome(path)
        with open(path) as handle:
            doc = json.load(handle)
        assert isinstance(doc["traceEvents"], list)
        assert len(doc["traceEvents"]) == len(events)


class TestReport:
    def test_report_summarizes_top_stacks(self):
        profiler = profile_busy_thread()
        report = profiler.report()
        assert report["samples"] == profiler.sample_count()
        assert report["interval_s"] == profiler.interval
        assert report["stacks"] >= 1
        top = report["top"]
        assert len(top) <= 20
        assert any("busy_wait_for_profiler" in frame
                   for entry in top for frame in entry["stack"])

    def test_quick_profile_has_consistent_empty_shape(self):
        profiler = SamplingProfiler(interval=0.002)
        profiler.start()
        profiler.stop()
        assert profiler.sample_count() >= 0
        assert isinstance(profiler.collapsed(), str)
        assert isinstance(profiler.report(), dict)
