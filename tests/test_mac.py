"""Functional tests for the fused multiply-accumulate unit."""

import numpy as np
import pytest

from repro.rtl import MultiplyAccumulate
from repro.synth import synthesize_netlist

from helpers import run_netlist


def test_exhaustive_2bit(lib):
    component = MultiplyAccumulate(2)
    a = np.repeat(np.arange(-2, 2), 4 * 16)
    b = np.tile(np.repeat(np.arange(-2, 2), 16), 4)
    c = np.tile(np.arange(-8, 8), 16)
    assert np.array_equal(run_netlist(component, lib, (a, b, c)),
                          component.exact(a, b, c))


@pytest.mark.parametrize("width", [3, 4, 6])
def test_random_widths(lib, width, rng):
    component = MultiplyAccumulate(width)
    a, b, c = component.random_operands(300, rng=rng,
                                        distribution="uniform")
    assert np.array_equal(run_netlist(component, lib, (a, b, c)),
                          component.exact(a, b, c))


def test_wraparound_accumulate(lib):
    component = MultiplyAccumulate(4)
    # a*b + c overflows the 8-bit result and must wrap.
    a = np.array([7], dtype=np.int64)
    b = np.array([7], dtype=np.int64)
    c = np.array([127], dtype=np.int64)
    netlist_result = run_netlist(component, lib, (a, b, c))
    assert np.array_equal(netlist_result, component.exact(a, b, c))
    assert netlist_result[0] == ((49 + 127 + 128) % 256) - 128


def test_zero_product_passthrough(lib, rng):
    component = MultiplyAccumulate(4)
    zeros = np.zeros(50, dtype=np.int64)
    c = rng.integers(-128, 128, 50)
    assert np.array_equal(run_netlist(component, lib, (zeros, zeros, c)), c)


def test_operand_metadata():
    component = MultiplyAccumulate(8)
    assert component.operand_widths == [8, 8, 16]
    assert component.output_width == 16
    assert component.operand_names == ["a", "b", "c"]
    assert component.family == "mac"


class TestTruncation:
    def test_truncated_netlist_matches_approximate(self, lib, rng):
        component = MultiplyAccumulate(4, precision=2)
        ops = component.random_operands(300, rng=rng,
                                        distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, ops),
                              component.approximate(*ops))

    def test_truncation_applies_to_all_operands(self, rng):
        component = MultiplyAccumulate(8, precision=5)
        a = np.array([3], dtype=np.int64)   # fully truncated away
        b = np.array([5], dtype=np.int64)
        c = np.array([7], dtype=np.int64)
        assert component.approximate(a, b, c)[0] == 0

    def test_error_bound(self, rng):
        component = MultiplyAccumulate(8, precision=6)
        a, b, c = component.random_operands(1000, rng=rng,
                                            distribution="uniform")
        # Restrict to cases without wraparound aliasing.
        exact = (a.astype(np.int64) * b + c)
        ok = np.abs(exact) < (1 << 15) - component.max_error_bound()
        err = np.abs(component.exact(a, b, c)
                     - component.approximate(a, b, c))
        assert err[ok].max() <= component.max_error_bound()

    def test_mac_deeper_or_equal_to_multiplier(self, lib):
        from repro.rtl import Multiplier
        from repro.sta import critical_path_delay
        mac_net = synthesize_netlist(MultiplyAccumulate(8), lib,
                                     effort="high")
        mul_net = synthesize_netlist(Multiplier(8), lib, effort="high")
        assert critical_path_delay(mac_net, lib) >= \
            0.95 * critical_path_delay(mul_net, lib)
