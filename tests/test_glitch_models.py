"""Tests for the timed simulator's selectable glitch models."""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.rtl import KoggeStoneAdder
from repro.sim import TimedSimulator, int_to_bits
from repro.sta import analyze
from repro.synth import synthesize_netlist


@pytest.fixture(scope="module")
def setup(lib):
    component = KoggeStoneAdder(16)
    netlist = synthesize_netlist(component, lib, effort="ultra")
    report = analyze(netlist, lib)
    a, b = component.random_operands(3000, rng=5)
    bits = np.concatenate([int_to_bits(a, 16), int_to_bits(b, 16)],
                          axis=1)
    return netlist, report.critical_path_ps, bits


class TestGlitchModels:
    def test_unknown_model_rejected(self, lib, setup):
        netlist, t_clock, __ = setup
        with pytest.raises(ValueError, match="glitch_model"):
            TimedSimulator(netlist, lib, t_clock, glitch_model="exact")

    def test_models_bracket_each_other(self, lib, setup):
        netlist, t_clock, bits = setup
        scenario = worst_case(10)
        rates = {}
        arrivals = {}
        for model in TimedSimulator.GLITCH_MODELS:
            sim = TimedSimulator(netlist, lib, t_clock,
                                 scenario=scenario, glitch_model=model)
            result = sim.run_stream(bits)
            rates[model] = result.error_rate
            arrivals[model] = float(result.arrivals.mean())
        assert rates["optimistic"] <= rates["sensitization"] \
            <= rates["pessimistic"]
        assert arrivals["optimistic"] <= arrivals["sensitization"] \
            <= arrivals["pessimistic"]

    def test_settled_values_identical_across_models(self, lib, setup):
        netlist, t_clock, bits = setup
        outs = []
        for model in TimedSimulator.GLITCH_MODELS:
            sim = TimedSimulator(netlist, lib, t_clock,
                                 glitch_model=model)
            outs.append(sim.run_stream(bits).settled)
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])

    def test_pessimistic_tracks_static_arrivals_on_toggles(self, lib,
                                                           setup):
        netlist, t_clock, bits = setup
        scenario = worst_case(10)
        report = analyze(netlist, lib, scenario=scenario)
        sim = TimedSimulator(netlist, lib, t_clock, scenario=scenario,
                             glitch_model="pessimistic")
        result = sim.run_stream(bits)
        static = np.array([report.arrivals[n]
                           for n in netlist.primary_outputs])
        # Pessimistic arrivals still cannot exceed static STA.
        assert (result.arrivals <= static[None, :] + 1e-2).all()

    def test_fresh_clean_under_all_models(self, lib, setup):
        netlist, t_clock, bits = setup
        for model in TimedSimulator.GLITCH_MODELS:
            sim = TimedSimulator(netlist, lib, t_clock,
                                 glitch_model=model)
            assert sim.run_stream(bits).error_rate == 0.0
