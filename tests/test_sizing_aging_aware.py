"""Tests for timing-driven sizing and the aging-aware baseline [4]."""

import pytest

from repro.aging import worst_case
from repro.rtl import Adder, Multiplier
from repro.sta import critical_path_delay
from repro.synth import (aging_aware_synthesize, optimize,
                         upsize_critical_paths)


def optimized_netlist(component, lib):
    net = component.build().copy()
    return optimize(net, lib)


class TestSizing:
    def test_performance_sizing_speeds_up(self, lib):
        net = optimized_netlist(Adder(16), lib)
        before = critical_path_delay(net, lib)
        report = upsize_critical_paths(net, lib, target_ps=0.0)
        after = critical_path_delay(net, lib)
        assert after < before
        assert report.upsized > 0
        assert not report.met  # target 0 is unreachable by design

    def test_reachable_target_met(self, lib):
        net = optimized_netlist(Adder(16), lib)
        goal = 0.97 * critical_path_delay(net, lib)
        report = upsize_critical_paths(net, lib, target_ps=goal)
        assert report.met
        assert report.achieved_ps <= goal

    def test_trivial_target_is_noop(self, lib):
        net = optimized_netlist(Adder(8), lib)
        cp = critical_path_delay(net, lib)
        report = upsize_critical_paths(net, lib, target_ps=cp * 2)
        assert report.met
        assert report.upsized == 0

    def test_area_budget_respected(self, lib):
        net = optimized_netlist(Adder(16), lib)
        budget = net.area(lib) * 1.02
        report = upsize_critical_paths(net, lib, target_ps=0.0,
                                       max_area_um2=budget)
        # One sizing round may overshoot slightly, but the pass must
        # stop as soon as the budget is hit.
        assert net.area(lib) <= budget * 1.5
        assert not report.met

    def test_sizing_only_changes_cells(self, lib):
        net = optimized_netlist(Adder(8), lib)
        topology = [(g.uid, g.kind, g.inputs, g.output) for g in net.gates]
        upsize_critical_paths(net, lib, target_ps=0.0)
        assert [(g.uid, g.kind, g.inputs, g.output)
                for g in net.gates] == topology

    def test_aged_target_sizing(self, lib):
        net = optimized_netlist(Adder(16), lib)
        scenario = worst_case(10)
        goal = critical_path_delay(net, lib) * 1.05
        report = upsize_critical_paths(net, lib, target_ps=goal,
                                       scenario=scenario)
        aged = critical_path_delay(net, lib, scenario=scenario)
        assert report.achieved_ps == pytest.approx(aged)


class TestAgingAwareBaseline:
    def test_hardening_reduces_aged_delay(self, lib):
        scenario = worst_case(10)
        plain = optimized_netlist(Adder(16), lib)
        plain_aged = critical_path_delay(plain, lib, scenario=scenario)
        result = aging_aware_synthesize(Adder(16), lib, scenario)
        assert result.aged_delay_ps < plain_aged

    def test_reports_both_delays(self, lib):
        result = aging_aware_synthesize(Adder(8), lib, worst_case(10))
        assert result.aged_delay_ps > result.fresh_delay_ps
        assert result.target_ps > 0

    def test_unbounded_budget_can_close_timing(self, lib):
        scenario = worst_case(1)
        result = aging_aware_synthesize(Adder(8), lib, scenario,
                                        area_budget_ratio=None)
        # With no area bound the small adder can be hardened to (or very
        # near) its fresh constraint.
        assert result.aged_delay_ps <= result.target_ps * 1.10

    def test_budget_limits_hardening(self, lib):
        scenario = worst_case(10)
        tight = aging_aware_synthesize(Multiplier(6), lib, scenario,
                                       area_budget_ratio=1.01)
        loose = aging_aware_synthesize(Multiplier(6), lib, scenario,
                                       area_budget_ratio=1.5)
        assert tight.netlist.area(lib) <= loose.netlist.area(lib)
        assert loose.aged_delay_ps <= tight.aged_delay_ps

    def test_explicit_target(self, lib):
        scenario = worst_case(10)
        result = aging_aware_synthesize(Adder(8), lib, scenario,
                                        target_ps=1e6)
        assert result.sizing.met
        assert result.sizing.upsized == 0
