"""Paper-fidelity invariant tests.

Real artifacts (characterizations, flow outcomes, timed simulations)
must satisfy the paper's structural claims — Eq. 2, the Section-V
slack rule, and the EXPERIMENTS.md error-shape facts — and the
checkers must actually *fail* on doctored artifacts.
"""

import dataclasses

import pytest

from repro.aging import balance_case, worst_case
from repro.core import (Block, Microarchitecture, characterize,
                        remove_guardband)
from repro.rtl import Adder, Multiplier
from repro.verify import (check_characterization, check_error_shape,
                          check_slack_rule)
from repro.verify.invariants import InvariantResult, _scenario_years

pytestmark = pytest.mark.verify


@pytest.fixture(scope="module")
def adder8_char(lib):
    return characterize(Adder(8), lib,
                        scenarios=[worst_case(1), worst_case(10),
                                   balance_case(10)],
                        precisions=range(8, 3, -1), effort="high",
                        cache=None)


@pytest.fixture(scope="module")
def flow_outcome(lib):
    micro = Microarchitecture("mini", [
        Block("mult", Multiplier(10)), Block("acc", Adder(10))])
    return remove_guardband(micro, lib, worst_case(10),
                            effort="high").outcome


class TestResultType:
    def test_describe_tags(self):
        ok = InvariantResult("x", True, "fine")
        bad = InvariantResult("y", False, "broken")
        assert ok.describe().startswith("PASS x")
        assert bad.describe().startswith("FAIL y")

    def test_scenario_years_parser(self):
        assert _scenario_years("10y_worst") == (10.0, "worst")
        assert _scenario_years("1.5y_balance") == (1.5, "balance")
        assert _scenario_years("fresh") == (None, None)


class TestCharacterizationInvariants:
    def test_real_characterization_passes(self, adder8_char):
        results = check_characterization(adder8_char)
        assert results
        failed = [r for r in results if not r.passed]
        assert failed == [], "\n".join(r.describe() for r in failed)
        names = {r.name for r in results}
        assert "aging_never_helps" in names
        assert any(n.startswith("eq2_required_precision") for n in names)
        assert "aged_delay_monotone_in_lifetime" in names
        assert "aged_delay_monotone_in_stress" in names

    def test_detects_aging_that_helps(self, adder8_char):
        doctored = dataclasses.replace(
            adder8_char,
            aged_ps=dict(adder8_char.aged_ps))
        # Claim the aged full-precision path got *faster* than fresh.
        doctored.aged_ps[(8, "10y_worst")] = \
            adder8_char.fresh_ps[8] * 0.5
        results = {r.name: r for r in check_characterization(doctored)}
        assert not results["aging_never_helps"].passed

    def test_detects_nonmonotone_lifetime(self, adder8_char):
        doctored = dataclasses.replace(
            adder8_char, aged_ps=dict(adder8_char.aged_ps))
        # 10-year delay dips below the 1-year delay at full precision.
        doctored.aged_ps[(8, "10y_worst")] = \
            adder8_char.aged_ps[(8, "1y_worst")] * 0.9
        results = {r.name: r for r in check_characterization(doctored)}
        assert not results["aged_delay_monotone_in_lifetime"].passed

    def test_detects_balance_worse_than_worst(self, adder8_char):
        doctored = dataclasses.replace(
            adder8_char, aged_ps=dict(adder8_char.aged_ps))
        doctored.aged_ps[(8, "10y_balance")] = \
            adder8_char.aged_ps[(8, "10y_worst")] * 2.0
        results = {r.name: r for r in check_characterization(doctored)}
        assert not results["aged_delay_monotone_in_stress"].passed


class TestSlackRule:
    def test_real_outcome_passes(self, flow_outcome):
        results = check_slack_rule(flow_outcome)
        assert results
        failed = [r for r in results if not r.passed]
        assert failed == [], "\n".join(r.describe() for r in failed)

    def test_detects_spurious_approximation(self, flow_outcome):
        # Doctor one decision: positive slack yet reduced precision —
        # the Section-V rule says such a block must stay exact.
        name, decision = next(iter(flow_outcome.decisions.items()))
        doctored_decision = dataclasses.replace(
            decision, slack_before_ps=12.5,
            chosen_precision=decision.original_precision - 1)
        doctored = dataclasses.replace(
            flow_outcome,
            decisions={**flow_outcome.decisions,
                       name: doctored_decision})
        results = {r.name: r for r in check_slack_rule(doctored)}
        assert not results["slack_rule_trigger"].passed

    def test_detects_precision_increase(self, flow_outcome):
        name, decision = next(iter(flow_outcome.decisions.items()))
        doctored_decision = dataclasses.replace(
            decision,
            chosen_precision=decision.original_precision + 3)
        doctored = dataclasses.replace(
            flow_outcome,
            decisions={**flow_outcome.decisions,
                       name: doctored_decision})
        results = {r.name: r for r in check_slack_rule(doctored)}
        assert not results["precision_never_increases"].passed


class TestErrorShape:
    def test_adder_error_ladder(self, lib, adder8):
        results = check_error_shape(Adder(8), lib, years=(1.0, 10.0),
                                    vectors=192, rng=9, effort="high",
                                    netlist=adder8)
        failed = [r for r in results if not r.passed]
        assert failed == [], "\n".join(r.describe() for r in failed)
        names = {r.name for r in results}
        assert names == {"zero_fresh_errors",
                         "error_rate_monotone_in_lifetime",
                         "error_rate_monotone_in_stress"}
