"""Tests for the FIR filter case study (signals, filter, microarch)."""

import numpy as np
import pytest

from repro.approx import ComponentArithmetic, TruncatedArithmetic
from repro.media import SIGNAL_NAMES, all_signals, make_signal
from repro.quality import snr_db
from repro.rtl import (FixedPointFIR, Multiplier, fir_microarchitecture,
                       lowpass_taps)


class TestSignals:
    def test_all_names(self):
        signals = all_signals(samples=512)
        assert set(signals) == set(SIGNAL_NAMES)
        for name, wave in signals.items():
            assert wave.shape == (512,)
            assert np.abs(wave).max() < 2 ** 15, name
            assert np.abs(wave).max() > 2 ** 10, name

    def test_deterministic(self):
        assert np.array_equal(make_signal("speech", 256),
                              make_signal("speech", 256))

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_signal("whale_song")

    def test_noise_is_broadband(self):
        wave = make_signal("noise", 2048).astype(float)
        spectrum = np.abs(np.fft.rfft(wave))
        low = spectrum[:len(spectrum) // 4].sum()
        high = spectrum[3 * len(spectrum) // 4:].sum()
        assert high > 0.3 * low   # energy everywhere

    def test_tone_is_narrowband(self):
        wave = make_signal("tone", 2048).astype(float)
        spectrum = np.abs(np.fft.rfft(wave))
        peak = spectrum.argmax()
        assert spectrum[peak] > 10 * np.median(spectrum + 1)


class TestTaps:
    def test_unity_dc_gain(self):
        taps = lowpass_taps(16, coeff_bits=9)
        assert taps.sum() == pytest.approx(1 << 9, abs=4)

    def test_symmetric(self):
        taps = lowpass_taps(17)
        assert np.array_equal(taps, taps[::-1])

    def test_lowpass_attenuates_high_band(self):
        taps = lowpass_taps(32, cutoff=0.2).astype(float) / (1 << 9)
        freqs = np.fft.rfft(taps, 512)
        response = np.abs(freqs)
        assert response[:20].mean() > 5 * response[-100:].mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            lowpass_taps(1)
        with pytest.raises(ValueError):
            lowpass_taps(8, cutoff=1.5)


class TestFilter:
    @pytest.fixture(scope="class")
    def fir(self):
        return FixedPointFIR(lowpass_taps(16))

    def test_output_shape(self, fir):
        signal = make_signal("tone", 1024)
        assert fir.filter(signal).shape == signal.shape

    def test_dc_passthrough(self, fir):
        signal = np.full(256, 1000, dtype=np.int64)
        out = fir.filter(signal)
        # After the warm-up transient, DC passes at unity gain.
        assert np.abs(out[64:] - 1000).max() <= 16

    def test_highpass_rejection(self, fir):
        alternating = 2000 * np.where(np.arange(512) % 2 == 0, 1, -1)
        out = fir.filter(alternating)
        assert np.abs(out[64:]).max() < 200   # Nyquist tone suppressed

    def test_matches_numpy_convolution(self, fir):
        signal = make_signal("music", 512)
        expected = np.convolve(signal, fir.taps.astype(float),
                               mode="full")[:512] / (1 << fir.coeff_bits)
        got = fir.filter(signal)
        assert np.abs(got - expected).max() <= len(fir)  # rounding only

    def test_linearity_of_exact_filter(self, fir, rng):
        a = rng.integers(-1000, 1000, 256)
        b = rng.integers(-1000, 1000, 256)
        both = fir.filter(a + b)
        separate = fir.filter(a) + fir.filter(b)
        assert np.abs(both - separate).max() <= len(fir)


class TestApproximateFilter:
    def test_truncation_degrades_gracefully(self):
        taps = lowpass_taps(16)
        signal = make_signal("speech", 2048)
        reference = FixedPointFIR(taps).filter(signal)
        snrs = []
        for drop in (6, 9, 11):
            arithmetic = ComponentArithmetic(
                mul_component=Multiplier(32, precision=32 - drop))
            out = FixedPointFIR(taps, arithmetic=arithmetic).filter(signal)
            snrs.append(snr_db(reference, out))
        assert snrs == sorted(snrs, reverse=True)
        assert snrs[0] > 30.0      # mild truncation is nearly free
        assert snrs[-1] < snrs[0]  # deep truncation costs fidelity

    def test_component_and_value_truncation_agree(self):
        taps = lowpass_taps(16)
        signal = make_signal("chirp", 1024)
        drop = 8
        by_component = FixedPointFIR(taps, arithmetic=ComponentArithmetic(
            mul_component=Multiplier(32, precision=32 - drop)))
        by_values = FixedPointFIR(taps, arithmetic=TruncatedArithmetic(
            mul_drop_bits=drop))
        assert np.array_equal(by_component.filter(signal),
                              by_values.filter(signal))


class TestFirMicroarchitecture:
    def test_structure(self):
        micro = fir_microarchitecture(width=16, taps=12)
        assert [b.name for b in micro.blocks] == ["mult", "acc"]
        assert micro.block("mult").instances == 12
        assert micro.metadata["taps"] == 12

    def test_flow_applies(self, lib):
        from repro.aging import worst_case
        from repro.core import remove_guardband
        micro = fir_microarchitecture(width=10, taps=8)
        report = remove_guardband(micro, lib, worst_case(10),
                                  effort="high")
        assert report.meets_constraint
        assert report.outcome.decisions["mult"].approximated
