"""Unit tests for the netlist graph substrate."""

import pytest

from repro.netlist import (CONST0, CONST1, Gate, Netlist, NetlistBuilder,
                           NetlistError, const_value, is_const)


def build_chain(length=3):
    """INV chain of the given length."""
    net = Netlist("chain")
    a = net.add_input("a")
    cur = a
    for __ in range(length):
        cur = net.add_gate("INV_X1", (cur,))
    net.set_outputs([cur])
    return net


class TestConstants:
    def test_const_ids_are_reserved(self):
        assert CONST0 == 0
        assert CONST1 == 1

    def test_is_const(self):
        assert is_const(CONST0)
        assert is_const(CONST1)
        assert not is_const(2)

    def test_const_value(self):
        assert const_value(CONST0) == 0
        assert const_value(CONST1) == 1

    def test_const_value_rejects_regular_net(self):
        with pytest.raises(ValueError):
            const_value(5)

    def test_fresh_netlist_cannot_drive_constants(self):
        net = Netlist()
        a = net.add_input("a")
        with pytest.raises(NetlistError):
            net.add_gate("INV_X1", (a,), output=CONST0)


class TestGate:
    def test_kind_strips_drive_suffix(self):
        gate = Gate(uid=0, cell="NAND2_X2", inputs=(2, 3), output=4)
        assert gate.kind == "NAND2"
        assert gate.drive == 2

    def test_kind_without_suffix(self):
        gate = Gate(uid=0, cell="WEIRD", inputs=(2,), output=3)
        assert gate.kind == "WEIRD"
        assert gate.drive == 1

    def test_with_cell_preserves_identity(self):
        gate = Gate(uid=7, cell="INV_X1", inputs=(2,), output=3, name="g")
        resized = gate.with_cell("INV_X4")
        assert resized.uid == 7
        assert resized.cell == "INV_X4"
        assert resized.inputs == (2,)
        assert resized.output == 3


class TestConstruction:
    def test_new_nets_are_unique(self):
        net = Netlist()
        ids = [net.new_net() for __ in range(100)]
        assert len(set(ids)) == 100
        assert CONST0 not in ids and CONST1 not in ids

    def test_add_inputs_names_lsb_first(self):
        net = Netlist()
        nets = net.add_inputs(3, "a")
        assert net.net_names[nets[0]] == "a[0]"
        assert net.net_names[nets[2]] == "a[2]"

    def test_single_driver_enforced(self):
        net = Netlist()
        a = net.add_input("a")
        out = net.add_gate("INV_X1", (a,))
        with pytest.raises(NetlistError):
            net.add_gate("BUF_X1", (a,), output=out)

    def test_driver_of(self):
        net = build_chain(1)
        out = net.primary_outputs[0]
        assert net.driver_of(out).kind == "INV"
        assert net.driver_of(net.primary_inputs[0]) is None


class TestTopology:
    def test_topological_order_respects_dependencies(self):
        net = build_chain(5)
        order = net.topological_gates()
        seen = set(net.primary_inputs) | {CONST0, CONST1}
        for gate in order:
            assert all(inp in seen for inp in gate.inputs)
            seen.add(gate.output)

    def test_topological_order_cached_and_invalidated(self):
        net = build_chain(3)
        first = net.topological_gates()
        assert net.topological_gates() is first
        net.add_gate("INV_X1", (net.primary_outputs[0],))
        assert len(net.topological_gates()) == 4

    def test_duplicate_input_pins_order_correctly(self):
        # Regression: a gate reading one net on two pins must not have
        # its dependency count decremented twice (found by fuzzing).
        net = Netlist()
        a, b = net.add_input("a"), net.add_input("b")
        late = net.new_net("late")
        mux_out = net.add_gate("MUX2_X1", (late, b, b))
        # The driver of `late` is declared AFTER its reader.
        net.add_gate("INV_X1", (a,), output=late)
        net.set_outputs([mux_out])
        order = net.topological_gates()
        assert [g.kind for g in order] == ["INV", "MUX2"]
        net.validate()

    def test_cycle_detected(self):
        net = Netlist()
        a = net.add_input("a")
        n1 = net.new_net()
        n2 = net.new_net()
        gate1 = Gate(uid=0, cell="AND2_X1", inputs=(a, n2), output=n1)
        gate2 = Gate(uid=1, cell="INV_X1", inputs=(n1,), output=n2)
        net.gates = [gate1, gate2]
        net._driver = {n1: gate1, n2: gate2}
        net.set_outputs([n2])
        with pytest.raises(NetlistError, match="cycle"):
            net.topological_gates()

    def test_undriven_input_detected(self):
        net = Netlist()
        dangling = net.new_net()
        net.add_gate("INV_X1", (dangling,))
        with pytest.raises(NetlistError, match="undriven"):
            net.topological_gates()

    def test_validate_undriven_output(self):
        net = Netlist()
        net.add_input("a")
        net.set_outputs([net.new_net()])
        with pytest.raises(NetlistError, match="undriven"):
            net.validate()

    def test_validate_ok_on_builder_output(self):
        net = build_chain(4)
        assert net.validate()


class TestQueries:
    def test_fanout_map(self):
        net = Netlist()
        a = net.add_input("a")
        o1 = net.add_gate("INV_X1", (a,))
        o2 = net.add_gate("BUF_X1", (a,))
        net.set_outputs([o1, o2])
        fan = net.fanout_map()
        assert len(fan[a]) == 2

    def test_cell_histogram(self):
        net = build_chain(3)
        assert net.cell_histogram() == {"INV_X1": 3}

    def test_nets_includes_everything(self):
        net = build_chain(2)
        nets = net.nets()
        assert CONST0 in nets and CONST1 in nets
        assert set(net.primary_inputs) <= nets
        assert set(net.primary_outputs) <= nets

    def test_area_and_leakage(self, lib):
        net = build_chain(4)
        assert net.area(lib) == pytest.approx(4 * lib["INV_X1"].area)
        assert net.leakage(lib) == pytest.approx(4 * lib["INV_X1"].leakage_nw)

    def test_load_caps_accumulate_fanout(self, lib):
        net = Netlist()
        a = net.add_input("a")
        stem = net.add_gate("INV_X1", (a,))
        sinks = [net.add_gate("BUF_X1", (stem,)) for __ in range(3)]
        net.set_outputs(sinks)
        loads = net.load_caps(lib, wire_cap_ff=0.5)
        stem_gate = net.driver_of(stem)
        expected = 3 * (lib["BUF_X1"].input_cap_ff + 0.5)
        assert loads[stem_gate.uid] == pytest.approx(expected)

    def test_load_caps_primary_output_load(self, lib):
        net = build_chain(1)
        gate = net.gates[0]
        loads = net.load_caps(lib, wire_cap_ff=0.5)
        assert loads[gate.uid] == pytest.approx(lib.output_load_ff + 0.5)


class TestMutation:
    def test_copy_is_independent(self):
        net = build_chain(3)
        dup = net.copy()
        dup.add_gate("INV_X1", (dup.primary_outputs[0],))
        assert net.num_gates == 3
        assert dup.num_gates == 4

    def test_copy_preserves_uids_and_names(self):
        net = build_chain(2)
        dup = net.copy()
        assert [g.uid for g in dup.gates] == [g.uid for g in net.gates]
        assert dup.net_names == net.net_names

    def test_rebuild_filters_gates(self):
        net = build_chain(3)
        net.rebuild(net.gates[:1])
        assert net.num_gates == 1

    def test_rebuild_rejects_duplicate_drivers(self):
        net = build_chain(1)
        gate = net.gates[0]
        clone = Gate(uid=99, cell="BUF_X1", inputs=gate.inputs,
                     output=gate.output)
        with pytest.raises(NetlistError):
            net.rebuild([gate, clone])

    def test_repr_mentions_counts(self):
        net = build_chain(2)
        text = repr(net)
        assert "gates=2" in text and "inputs=1" in text
