"""Tests for the degradation-aware cell library (the [4]/[9] artifact)."""

import pytest

from repro.aging import DEFAULT_BTI
from repro.cells import DegradationAwareLibrary, STRESS_GRID, nangate45


@pytest.fixture(scope="module")
def degraded(lib):
    return DegradationAwareLibrary(lib, lifetimes=(1.0, 10.0))


class TestTables:
    def test_grid_matches_released_library_format(self):
        # 11x11 stress combinations, as in the paper's reference [9].
        assert STRESS_GRID.shape == (11,)
        assert STRESS_GRID[0] == 0.0 and STRESS_GRID[-1] == 1.0

    def test_table_shape(self, degraded):
        table = degraded.table("NAND2_X1", 10.0)
        assert table.shape == (11, 11)

    def test_table_corner_values_match_closed_form(self, degraded):
        table = degraded.table("INV_X1", 10.0)
        cell = degraded.library["INV_X1"]
        exact = DEFAULT_BTI.cell_multiplier(1.0, 1.0, 10.0,
                                            wp=cell.wp, wn=cell.wn)
        assert table[10, 10] == pytest.approx(exact)
        assert table[0, 0] == pytest.approx(1.0)

    def test_tables_shared_across_drive_variants(self, degraded):
        assert degraded.table("NAND2_X1", 10.0) is \
            degraded.table("NAND2_X4", 10.0)

    def test_untabulated_lifetime_rejected(self, degraded):
        with pytest.raises(KeyError, match="not tabulated"):
            degraded.table("INV_X1", 3.0)

    def test_requires_at_least_one_lifetime(self, lib):
        with pytest.raises(ValueError):
            DegradationAwareLibrary(lib, lifetimes=())


class TestLookup:
    def test_fresh_lookup_is_identity(self, degraded):
        assert degraded.multiplier("INV_X1", 1.0, 1.0, 0) == 1.0

    def test_on_grid_lookup_is_exact(self, degraded):
        for sp in (0.0, 0.5, 1.0):
            for sn in (0.0, 0.5, 1.0):
                approx = degraded.multiplier("NOR2_X1", sp, sn, 10.0)
                exact = degraded.exact_multiplier("NOR2_X1", sp, sn, 10.0)
                assert approx == pytest.approx(exact, rel=1e-12)

    def test_off_grid_interpolation_is_tight(self, degraded):
        # The multiplier surface is smooth, so bilinear interpolation on
        # an 11x11 grid must be accurate to well under a percent of the
        # multiplier value.
        err = degraded.max_interpolation_error("XOR2_X1", 10.0, samples=41)
        assert err < 1e-2

    def test_lookup_monotone_in_stress(self, degraded):
        values = [degraded.multiplier("AND2_X1", s, s, 10.0)
                  for s in STRESS_GRID]
        assert values == sorted(values)

    def test_out_of_range_stress_rejected(self, degraded):
        with pytest.raises(ValueError):
            degraded.multiplier("INV_X1", 1.2, 0.5, 10.0)

    def test_asymmetric_cells_distinguish_networks(self, degraded):
        # NOR2 is pMOS-dominated; pMOS-only stress must hurt more than
        # nMOS-only stress.
        p_only = degraded.multiplier("NOR2_X1", 1.0, 0.0, 10.0)
        n_only = degraded.multiplier("NOR2_X1", 0.0, 1.0, 10.0)
        assert p_only > n_only


class TestIntegrationWithSTA:
    def test_sta_accepts_degradation_tables(self, lib, adder8):
        from repro.aging import worst_case
        from repro.sta import critical_path_delay
        degraded = DegradationAwareLibrary(lib, lifetimes=(10.0,))
        closed = critical_path_delay(adder8, lib, scenario=worst_case(10))
        tabled = critical_path_delay(adder8, lib, scenario=worst_case(10),
                                     degradation=degraded)
        assert tabled == pytest.approx(closed, rel=1e-9)
