"""Tests for the bit-packed 64-way simulation engine.

The packed engine must be *bit-identical* to the ``uint8`` reference
engine — outputs, signal probabilities, and toggle rates — on the full
component library, on random netlists under random stimuli, and across
awkward batch sizes (non-multiples of 64, single vectors, empty).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cells import default_library
from repro.cells.cell import CELL_KINDS
from repro.netlist import CONST0, CONST1, NetlistBuilder
from repro.sim import (compile_netlist, evaluate, evaluate_packed,
                       pack_bits, popcount, simulate_activity, unpack_bits)
from repro.sim import bitpack

LIB = default_library()

#: Batch sizes straddling word boundaries, plus the degenerate ones.
EDGE_BATCHES = (0, 1, 2, 63, 64, 65, 127, 128, 130)


class TestPackUnpack:
    @pytest.mark.parametrize("batch", EDGE_BATCHES)
    def test_roundtrip(self, batch, rng):
        bits = rng.integers(0, 2, (batch, 5)).astype(np.uint8)
        packed = pack_bits(bits)
        assert packed.shape == (5, bitpack.word_count(batch))
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_bits(packed, batch), bits)

    def test_layout_lsb_first(self):
        # Vector i lands in word i // 64 at bit i % 64.
        bits = np.zeros((65, 1), dtype=np.uint8)
        bits[1, 0] = 1
        bits[64, 0] = 1
        packed = pack_bits(bits)
        assert packed[0].tolist() == [2, 1]

    def test_pad_bits_are_zero(self):
        packed = pack_bits(np.ones((3, 2), dtype=np.uint8))
        assert packed[0, 0] == 7

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(2, dtype=np.uint64), 8)

    def test_unpack_capacity_check(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros((1, 1), dtype=np.uint64), 65)


class TestPopcount:
    def test_matches_python_bit_count(self, rng):
        words = rng.integers(0, 1 << 63, 100, dtype=np.uint64)
        got = np.asarray(popcount(words), dtype=np.int64)
        want = [bin(int(w)).count("1") for w in words]
        assert got.tolist() == want

    def test_swar_fallback_matches(self, rng):
        words = rng.integers(0, 1 << 63, 100, dtype=np.uint64)
        swar = np.asarray(bitpack._popcount_swar(words), dtype=np.int64)
        fast = np.asarray(popcount(words), dtype=np.int64)
        assert np.array_equal(swar, fast)

    def test_tail_mask(self):
        assert bitpack.tail_mask(64) == bitpack.ALL_ONES
        assert bitpack.tail_mask(0) == bitpack.ALL_ONES
        assert bitpack.tail_mask(1) == 1
        assert bitpack.tail_mask(3) == 7


class TestPackedKernels:
    @pytest.mark.parametrize("kind", sorted(CELL_KINDS))
    def test_kernel_matches_byte_function(self, kind):
        arity, byte_func = CELL_KINDS[kind]
        kernel = bitpack.packed_cell_function(kind)
        rows = np.array([[(m >> i) & 1 for i in range(arity)]
                         for m in range(1 << arity)], dtype=np.uint8)
        packed_ins = pack_bits(rows)
        out = kernel(*[packed_ins[i:i + 1] for i in range(arity)])
        got = unpack_bits(out, rows.shape[0])[:, 0]
        want = [byte_func(*row) & 1 for row in rows.tolist()]
        assert got.tolist() == want

    def test_truth_table_fallback(self):
        # An "unknown" 3-input kind synthesizes from its truth table.
        def majority(a, b, c):
            return (a & b) | (a & c) | (b & c)

        kernel = bitpack.packed_cell_function("MAJ3__test", arity=3,
                                              reference=majority)
        rows = np.array([[(m >> i) & 1 for i in range(3)]
                         for m in range(8)], dtype=np.uint8)
        packed_ins = pack_bits(rows)
        out = kernel(*[packed_ins[i:i + 1] for i in range(3)])
        got = unpack_bits(out, 8)[:, 0]
        assert got.tolist() == [majority(*row) for row in rows.tolist()]

    def test_constant_zero_fallback(self):
        kernel = bitpack.packed_cell_function("ZERO__test", arity=1,
                                              reference=lambda a: 0)
        out = kernel(np.full(2, bitpack.ALL_ONES, dtype=np.uint64))
        assert out.tolist() == [0, 0]


class TestEngineEquivalence:
    """Acceptance: packed is bit-identical to bytes on the component
    library (adder/multiplier/MAC) and on awkward batch sizes."""

    @pytest.mark.parametrize("batch", EDGE_BATCHES)
    def test_outputs_identical(self, lib, adder8, mult6, mac4, batch, rng):
        for netlist in (adder8, mult6, mac4):
            compiled = compile_netlist(netlist, lib)
            bits = rng.integers(
                0, 2, (batch, len(compiled.pi_slots))).astype(np.uint8)
            ref = evaluate(compiled, bits)
            got = evaluate_packed(compiled, bits)
            assert got.shape == ref.shape
            assert np.array_equal(got, ref)

    @pytest.mark.parametrize("batch", EDGE_BATCHES)
    def test_activity_identical(self, lib, adder8, mult6, mac4, batch, rng):
        for netlist in (adder8, mult6, mac4):
            n_pi = len(netlist.primary_inputs)
            bits = rng.integers(0, 2, (batch, n_pi)).astype(np.uint8)
            ref = simulate_activity(netlist, lib, bits, engine="bytes")
            got = simulate_activity(netlist, lib, bits, engine="packed")
            assert got.vectors == ref.vectors
            assert got.signal_probability == ref.signal_probability
            assert got.toggle_rate == ref.toggle_rate

    def test_default_engine_is_packed(self, lib, adder8, rng):
        bits = rng.integers(
            0, 2, (70, len(adder8.primary_inputs))).astype(np.uint8)
        default = simulate_activity(adder8, lib, bits)
        packed = simulate_activity(adder8, lib, bits, engine="packed")
        assert default.signal_probability == packed.signal_probability
        assert default.toggle_rate == packed.toggle_rate

    def test_unknown_engine_rejected(self, lib, adder8):
        with pytest.raises(ValueError, match="engine"):
            simulate_activity(
                adder8, lib,
                np.zeros((2, len(adder8.primary_inputs)), dtype=np.uint8),
                engine="simd")

    def test_release_flag_equivalence(self, lib, mult6, rng):
        compiled = compile_netlist(mult6, lib)
        bits = rng.integers(
            0, 2, (100, len(compiled.pi_slots))).astype(np.uint8)
        assert np.array_equal(
            evaluate_packed(compiled, bits, release=True),
            evaluate_packed(compiled, bits, release=False))

    def test_shape_validation(self, lib, adder8):
        compiled = compile_netlist(adder8, lib)
        with pytest.raises(ValueError, match="shape"):
            evaluate_packed(compiled, np.zeros((4, 3), dtype=np.uint8))


# ---------------------------------------------------------------------------
# property test: random netlists x random stimuli
# ---------------------------------------------------------------------------

_BINARY = ("and2", "or2", "xor2", "xnor2", "nand2", "nor2")


@st.composite
def random_netlists(draw, max_gates=25):
    """Random DAG over 4 inputs plus constants (all cell kinds)."""
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    builder = NetlistBuilder(name="packfuzz")
    pool = list(builder.inputs(4, "x")) + [CONST0, CONST1]
    for __ in range(n_gates):
        choice = draw(st.integers(0, len(_BINARY) + 1))
        if choice == len(_BINARY):
            pool.append(builder.inv(pool[draw(st.integers(0, len(pool) - 1))]))
        elif choice == len(_BINARY) + 1:
            a, b, s = (pool[draw(st.integers(0, len(pool) - 1))]
                       for __ in range(3))
            pool.append(builder.mux2(a, b, s))
        else:
            a, b = (pool[draw(st.integers(0, len(pool) - 1))]
                    for __ in range(2))
            pool.append(getattr(builder, _BINARY[choice])(a, b))
    outputs = [pool[-(i % len(pool)) - 1] for i in range(2)]
    return builder.outputs(outputs)


@given(netlist=random_netlists(),
       batch=st.sampled_from(EDGE_BATCHES),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_engines_agree_on_random_netlists(netlist, batch, seed):
    stim_rng = np.random.default_rng(seed)
    bits = stim_rng.integers(0, 2, (batch, 4)).astype(np.uint8)
    compiled = compile_netlist(netlist, LIB)
    assert np.array_equal(evaluate_packed(compiled, bits),
                          evaluate(compiled, bits))
    ref = simulate_activity(netlist, LIB, bits, engine="bytes")
    got = simulate_activity(netlist, LIB, bits, engine="packed")
    assert got.signal_probability == ref.signal_probability
    assert got.toggle_rate == ref.toggle_rate
