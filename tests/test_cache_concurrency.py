"""Concurrent multi-process safety of the on-disk characterization cache.

The serving layer's worker pool (and independent CLI runs sharing one
``REPRO_CACHE_DIR``) write the same tree concurrently. These tests pin
the two guarantees that make that safe:

* **atomic stores** — a reader racing any number of writers never sees
  a torn entry: every load returns None or a schema-valid entry, and no
  corrupt-quarantine recovery is ever triggered;
* **merge-on-store** — two processes extending the *same key* with
  different scenarios leave a valid entry whose aged values are correct
  for whichever writes survived the race.
"""

import json
import multiprocessing

from repro.core.cache import (CACHE_SCHEMA, CharacterizationCache,
                              shard_index)

KEY = "deadbeefcafef00d" * 4
OTHER_KEY = "5eedfacebead1234" * 4

METRICS = {"delay_ps": 100.0, "area_um2": 2.0, "leakage_nw": 3.0,
           "gates": 4, "depth": 5}

ROUNDS = 150


def _store_worker(root, label, barrier, shards):
    """Repeatedly extend KEY with this writer's scenario fingerprints."""
    cache = CharacterizationCache(root, shards=shards)
    barrier.wait()
    for index in range(ROUNDS):
        fingerprint = "fp_%s_%02d" % (label, index % 8)
        cache.store(KEY, METRICS,
                    {fingerprint: {"label": label,
                                   "delay_ps": float(index % 8)}})


def _load_worker(root, barrier, queue):
    """Hammer load() against a concurrent writer; report anomalies."""
    cache = CharacterizationCache(root, mem_entries=0)
    barrier.wait()
    torn = 0
    seen = 0
    for __ in range(ROUNDS * 4):
        entry = cache.load(KEY)
        if entry is None:
            continue
        seen += 1
        if (entry.get("schema") != CACHE_SCHEMA
                or entry.get("metrics") != METRICS
                or not isinstance(entry.get("aged"), dict)):
            torn += 1
    queue.put({"torn": torn, "seen": seen, "errors": cache.stats.errors})


def _run_processes(targets):
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(len(targets))
    processes = [context.Process(target=target, args=args + (barrier,)
                                 + extra)
                 for target, args, extra in targets]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    return processes


class TestConcurrentWriters:
    def test_two_writers_same_key_never_torn(self, tmp_path):
        root = str(tmp_path)
        _run_processes([
            (_store_worker, (root, "alpha"), (0,)),
            (_store_worker, (root, "beta"), (0,)),
        ])
        cache = CharacterizationCache(root)
        entry = cache.load(KEY)
        assert entry is not None
        assert cache.stats.errors == 0
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["metrics"] == METRICS
        # Every surviving aged record is internally consistent with the
        # writer that produced it (value == index encoded in the name).
        assert entry["aged"]
        for fingerprint, record in entry["aged"].items():
            label, index = fingerprint.split("_")[1:]
            assert record["label"] == label
            assert record["delay_ps"] == float(int(index))
        # The losing half of a peek/replace race is dropped whole, never
        # interleaved: on-disk JSON parses and no temp files leak.
        leftovers = [p for p in tmp_path.rglob("*")
                     if p.is_file() and not p.name.endswith(".json")]
        assert leftovers == []

    def test_reader_never_sees_torn_entries(self, tmp_path):
        root = str(tmp_path)
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        _run_processes([
            (_store_worker, (root, "alpha"), (0,)),
            (_load_worker, (root,), (queue,)),
        ])
        report = queue.get(timeout=10)
        assert report["torn"] == 0
        assert report["errors"] == 0
        # The reader overlapped the writer enough to matter.
        assert report["seen"] > 0

    def test_sharded_writers_spread_and_agree(self, tmp_path):
        root = str(tmp_path)
        shards = 4
        _run_processes([
            (_store_worker, (root, "alpha"), (shards,)),
            (_store_worker, (root, "beta"), (shards,)),
        ])
        expected_dir = tmp_path / ("shard-%02d" % shard_index(KEY, shards))
        files = list(expected_dir.rglob("*.json"))
        assert len(files) == 1
        entry = json.loads(files[0].read_text())
        assert entry["schema"] == CACHE_SCHEMA
        cache = CharacterizationCache(root, shards=shards)
        assert cache.load(KEY) is not None
        # An unsharded view of the same root does not see sharded keys:
        # shard layout is part of the cache configuration.
        assert CharacterizationCache(root).load(KEY) is None

    def test_distinct_keys_land_in_distinct_shards(self, tmp_path):
        cache = CharacterizationCache(str(tmp_path), shards=16)
        cache.store(KEY, METRICS, {"fp": {"label": "a", "delay_ps": 1.0}})
        cache.store(OTHER_KEY, METRICS,
                    {"fp": {"label": "b", "delay_ps": 2.0}})
        dirs = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
        assert dirs == sorted({"shard-%02d" % shard_index(KEY, 16),
                               "shard-%02d" % shard_index(OTHER_KEY, 16)})
        assert cache.load(KEY)["aged"]["fp"]["delay_ps"] == 1.0
        assert cache.load(OTHER_KEY)["aged"]["fp"]["delay_ps"] == 2.0
