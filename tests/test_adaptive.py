"""Tests for the adaptive graceful-degradation scheduler."""

import pytest

from repro.aging import balance_case
from repro.core import (AgingApproximationLibrary, Block, Microarchitecture,
                        PrecisionSchedule, plan_graceful_degradation)
from repro.rtl import Adder, Multiplier


def mini_micro(width=10):
    return Microarchitecture("mini", [
        Block(name="mult", component=Multiplier(width), instances=2),
        Block(name="acc", component=Adder(width)),
    ])


@pytest.fixture(scope="module")
def schedule(lib):
    return plan_graceful_degradation(mini_micro(), lib, [1, 5, 10],
                                     effort="high")


class TestPlanning:
    def test_starts_at_full_precision(self, schedule):
        age, precisions = schedule.checkpoints[0]
        assert age == 0.0
        assert precisions == {"mult": 10, "acc": 10}

    def test_monotone_nonincreasing(self, schedule):
        for name in ("mult", "acc"):
            series = [p[name] for __, p in schedule.checkpoints]
            assert series == sorted(series, reverse=True)

    def test_violating_block_degrades_over_life(self, schedule):
        first = schedule.checkpoints[1][1]["mult"]
        last = schedule.checkpoints[-1][1]["mult"]
        assert last <= first < 10

    def test_healthy_block_never_degrades(self, schedule):
        assert all(p["acc"] == 10 for __, p in schedule.checkpoints)

    def test_constraint_recorded(self, schedule, lib):
        micro = mini_micro()
        assert schedule.constraint_ps == pytest.approx(
            micro.timing_constraint_ps(lib, "high"))

    def test_invalid_grid_rejected(self, lib):
        with pytest.raises(ValueError):
            plan_graceful_degradation(mini_micro(), lib, [])
        with pytest.raises(ValueError):
            plan_graceful_degradation(mini_micro(), lib, [0, 5])

    def test_shares_characterizations(self, lib):
        store = AgingApproximationLibrary()
        plan_graceful_degradation(mini_micro(), lib, [1, 10],
                                  approx_library=store, effort="high")
        entry = store.get("multiplier_w10")
        assert entry is not None
        assert entry.has_scenario("1y_worst")
        assert entry.has_scenario("10y_worst")

    def test_alternate_stress_factory(self, lib):
        worst = plan_graceful_degradation(mini_micro(), lib, [10],
                                          effort="high")
        typical = plan_graceful_degradation(
            mini_micro(), lib, [10], effort="high",
            scenario_factory=balance_case)
        assert typical.checkpoints[-1][1]["mult"] >= \
            worst.checkpoints[-1][1]["mult"]


class TestQueries:
    def test_precisions_at_interpolates_stepwise(self, schedule):
        assert schedule.precisions_at(0.5) == schedule.checkpoints[0][1]
        assert schedule.precisions_at(1.0) == schedule.checkpoints[1][1]
        assert schedule.precisions_at(7.0) == schedule.checkpoints[2][1]
        assert schedule.precisions_at(30.0) == schedule.checkpoints[-1][1]

    def test_negative_age_rejected(self, schedule):
        with pytest.raises(ValueError):
            schedule.precisions_at(-1.0)

    def test_total_bits_dropped(self, schedule):
        assert schedule.total_bits_dropped(0.0) == 0
        assert schedule.total_bits_dropped(10.0) >= \
            schedule.total_bits_dropped(1.0) > 0

    def test_adaptation_ages_subset_of_checkpoints(self, schedule):
        ages = schedule.adaptation_ages()
        checkpoint_ages = [a for a, __ in schedule.checkpoints]
        assert set(ages) <= set(checkpoint_ages)
        assert ages[0] == 0.0


class TestMergeSupport:
    def test_merge_extends_scenarios(self, lib):
        from repro.aging import worst_case
        from repro.core import characterize
        adder = Adder(8)
        base = characterize(adder, lib, scenarios=[worst_case(1)],
                            precisions=[8, 6], effort="low")
        extra = characterize(adder, lib, scenarios=[worst_case(10)],
                             precisions=[8, 6], effort="low")
        base.merge(extra)
        assert base.has_scenario("1y_worst")
        assert base.has_scenario("10y_worst")

    def test_merge_rejects_other_component(self, lib):
        from repro.aging import worst_case
        from repro.core import characterize
        a = characterize(Adder(8), lib, scenarios=[worst_case(1)],
                         precisions=[8], effort="low")
        b = characterize(Adder(6), lib, scenarios=[worst_case(1)],
                         precisions=[6], effort="low")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_has_scenario_partial(self, lib):
        from repro.aging import worst_case
        from repro.core import characterize
        entry = characterize(Adder(8), lib, scenarios=[worst_case(1)],
                             precisions=[8, 7], effort="low")
        extra = characterize(Adder(8), lib, scenarios=[worst_case(10)],
                             precisions=[8], effort="low")
        entry.merge(extra)
        # 10y covers only precision 8 -> not fully characterized.
        assert not entry.has_scenario("10y_worst")
        assert entry.has_scenario("1y_worst")
