"""Tests for the characterization service (repro.serve).

Covers the wire protocol, the multi-tier answer path (computed -> disk
-> mem), single-flight dedup of concurrent identical queries, batch
streaming, bit-identical equivalence with direct ``characterize()``
calls, and the CLI ``serve`` subcommand end to end.
"""

import asyncio
import os
import re
import subprocess
import sys

import pytest

from repro.aging import fresh as fresh_scenario, worst_case
from repro.core.characterize import characterize
from repro.obs import metrics as obs_metrics
from repro.rtl import Adder, Multiplier
from repro.serve import CharacterizationServer, ServeClient, http_request
from repro.serve.client import ServeError
from repro.serve.protocol import ProtocolError, parse_query

QUERY = {"component": "adder8", "precisions": [8, 7, 6],
         "scenarios": ["worst10y", "fresh"], "effort": "high"}


def run(coro):
    return asyncio.run(coro)


async def start_server(tmp_path, **kwargs):
    kwargs.setdefault("workers", 1)
    server = CharacterizationServer(str(tmp_path), **kwargs)
    # Scope a fresh registry during start(): the server pins it for the
    # whole session, so counters don't bleed between tests.
    with obs_metrics.scoped():
        await server.start()
    return server


class TestParseQuery:
    def test_happy_path(self):
        component, precisions, scenarios, effort = parse_query(QUERY)
        assert component.family == "adder" and component.width == 8
        assert precisions == [8, 7, 6]
        assert [s.label for s in scenarios] == ["10y_worst", "fresh"]
        assert effort == "high"

    def test_defaults(self):
        component, precisions, scenarios, effort = \
            parse_query({"component": "multiplier", "width": 6})
        assert component.width == 6
        assert precisions == [6]
        assert [s.label for s in scenarios] == ["10y_worst"]
        assert effort == "ultra"

    def test_single_precision_and_scenario_strings(self):
        __c, precisions, scenarios, __e = parse_query(
            {"component": "adder8", "precision": 7,
             "scenarios": "balance1y"})
        assert precisions == [7]
        assert [s.label for s in scenarios] == ["1y_balance"]

    def test_precisions_deduped_and_sorted(self):
        __c, precisions, __s, __e = parse_query(
            {"component": "adder8", "precisions": [6, 8, 6, 7]})
        assert precisions == [8, 7, 6]

    @pytest.mark.parametrize("payload,match", [
        ([1, 2], "JSON object"),
        ({"component": "adder8", "bogus": 1}, "unknown query fields"),
        ({}, "component"),
        ({"component": 7}, "component"),
        ({"component": "warp9"}, "unknown component"),
        ({"component": "adder8", "width": "wide"}, "integer"),
        ({"component": "adder8", "precision": 8, "precisions": [8]},
         "not both"),
        ({"component": "adder8", "precisions": []}, "non-empty"),
        ({"component": "adder8", "precisions": [8, "x"]}, "integers"),
        ({"component": "adder8", "precision": 9, "width": 8},
         "out of range"),
        ({"component": "adder8", "precision": 0}, "out of range"),
        ({"component": "adder8", "scenarios": []}, "scenarios"),
        ({"component": "adder8", "scenarios": ["sometimes"]},
         "unknown scenario"),
        ({"component": "adder8", "effort": "heroic"}, "unknown effort"),
    ])
    def test_rejects(self, payload, match):
        with pytest.raises(ProtocolError, match=match):
            parse_query(payload)


class TestServerBasics:
    def test_health_stats_and_routing_errors(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                async with ServeClient(server.host, server.port) as client:
                    health = await client.healthz()
                    assert health["status"] == "ok"
                    with pytest.raises(ServeError) as exc:
                        await client.request("GET", "/v1/nope")
                    assert exc.value.status == 404
                    with pytest.raises(ServeError) as exc:
                        await client.request("GET", "/v1/characterize")
                    assert exc.value.status == 405
                    with pytest.raises(ServeError) as exc:
                        await client.characterize({"component": "warp9"})
                    assert exc.value.status == 400
                    stats = await client.stats()
                    assert stats["requests"] >= 4
                    assert stats["config"]["workers"] == 1
                    metrics = await client.metrics()
                    assert "serve.requests" in metrics["counters"]
            finally:
                await server.stop()
        run(scenario())

    def test_tier_progression_computed_mem_disk(self, tmp_path):
        async def scenario():
            # Cold compute: the worker's store is pulled straight into
            # the memory tier, so repeats answer from memory.
            server = await start_server(tmp_path)
            try:
                async with ServeClient(server.host, server.port) as client:
                    sources = []
                    for __ in range(3):
                        reply = await client.characterize(
                            dict(QUERY, precisions=[8]))
                        sources.append(reply["points"][0]["source"])
                    stats = await client.stats()
            finally:
                await server.stop()
            assert sources == ["computed", "mem", "mem"]
            assert stats["computes"] == 1
            assert stats["tier_hits"] == {"disk": 0, "mem": 2}
            assert stats["cache"]["mem_hits"] == 2
            assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"]

            # A fresh server over the same directory starts with a cold
            # memory tier: disk answers once, then memory.
            server = await start_server(tmp_path)
            try:
                async with ServeClient(server.host, server.port) as client:
                    sources = []
                    for __ in range(3):
                        reply = await client.characterize(
                            dict(QUERY, precisions=[8]))
                        sources.append(reply["points"][0]["source"])
                    stats = await client.stats()
            finally:
                await server.stop()
            assert sources == ["disk", "mem", "mem"]
            assert stats["computes"] == 0
            assert stats["tier_hits"] == {"disk": 1, "mem": 2}
        run(scenario())

    def test_mem_tier_disabled_stays_on_disk(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path, mem_entries=0)
            try:
                async with ServeClient(server.host, server.port) as client:
                    sources = [
                        (await client.characterize(
                            dict(QUERY, precisions=[8])))
                        ["points"][0]["source"]
                        for __ in range(3)]
            finally:
                await server.stop()
            assert sources == ["computed", "disk", "disk"]
        run(scenario())

    def test_batch_streams_points_then_summary(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                async with ServeClient(server.host, server.port) as client:
                    records = [r async for r in client.batch(QUERY)]
                    again = [r async for r in client.batch(QUERY)]
            finally:
                await server.stop()
            summary = records[-1]
            assert summary["done"] is True
            assert summary["points"] == 3 and summary["errors"] == 0
            assert {r["precision"] for r in records[:-1]} == {8, 7, 6}
            assert all(r["source"] == "computed" for r in records[:-1])
            # The replay is answered from the cache tiers, same values.
            by_precision = {r["precision"]: r for r in records[:-1]}
            for record in again[:-1]:
                assert record["source"] in ("disk", "mem")
                warm = by_precision[record["precision"]]
                assert record["metrics"] == warm["metrics"]
                assert record["aged"] == warm["aged"]
        run(scenario())

    def test_shutdown_endpoint_ends_run(self, tmp_path):
        async def scenario():
            server = CharacterizationServer(str(tmp_path), workers=1)
            task = asyncio.ensure_future(
                server.run(install_signal_handlers=False))
            while server.port == 0 or server._server is None:
                await asyncio.sleep(0.01)
            async with ServeClient(server.host, server.port) as client:
                reply = await client.shutdown()
            assert reply["status"] == "shutting down"
            await asyncio.wait_for(task, timeout=10.0)
        run(scenario())

    def test_max_requests_budget(self, tmp_path):
        async def scenario():
            server = CharacterizationServer(str(tmp_path), workers=1,
                                            max_requests=2)
            task = asyncio.ensure_future(
                server.run(install_signal_handlers=False))
            while server.port == 0 or server._server is None:
                await asyncio.sleep(0.01)
            client = ServeClient(server.host, server.port)
            await client.healthz()
            await client.healthz()
            await client.close()
            await asyncio.wait_for(task, timeout=10.0)
        run(scenario())


class TestBitIdentical:
    def test_server_matches_direct_characterize(self, lib, tmp_path):
        """Acceptance: served results are bit-identical to library calls,
        from the computed, disk and memory tiers alike."""
        async def scenario():
            server = await start_server(tmp_path)
            try:
                async with ServeClient(server.host, server.port) as client:
                    cold = await client.characterize(QUERY)
                    warm = await client.characterize(QUERY)
            finally:
                await server.stop()
            return cold, warm

        cold, warm = run(scenario())
        table = characterize(Adder(8), lib,
                             scenarios=[worst_case(10), fresh_scenario()],
                             precisions=[8, 7, 6], effort="high",
                             cache=None)
        for reply, sources in ((cold, {"computed"}),
                               (warm, {"disk", "mem"})):
            assert [p["precision"] for p in reply["points"]] == [8, 7, 6]
            for point in reply["points"]:
                precision = point["precision"]
                assert point["source"] in sources
                assert point["component"] == "adder_w8"
                assert point["metrics"]["delay_ps"] == \
                    table.fresh_ps[precision]
                assert point["metrics"]["area_um2"] == \
                    table.area_um2[precision]
                assert point["metrics"]["leakage_nw"] == \
                    table.leakage_nw[precision]
                assert point["metrics"]["gates"] == table.gates[precision]
                assert point["metrics"]["depth"] == table.depth[precision]
                assert point["aged"]["10y_worst"] == \
                    table.aged_ps[(precision, "10y_worst")]
                assert point["aged"]["fresh"] == \
                    table.aged_ps[(precision, "fresh")]


class TestSingleFlight:
    CONCURRENT = 4

    async def _fanout(self, server, query):
        # Open every connection first so all requests are in flight
        # well inside the compute window of the first one.
        clients = [ServeClient(server.host, server.port)
                   for __ in range(self.CONCURRENT)]
        for client in clients:
            await client._connection()
        try:
            return await asyncio.gather(
                *[client.characterize(query) for client in clients])
        finally:
            for client in clients:
                await client.close()

    def test_identical_concurrent_queries_compute_once(self, tmp_path):
        """Acceptance: N identical concurrent cold queries trigger
        exactly one characterization run (single-flight dedup)."""
        query = {"component": "mult8", "precision": 8,
                 "scenarios": ["worst10y"], "effort": "high"}

        async def scenario():
            server = await start_server(tmp_path)
            try:
                replies = await self._fanout(server, query)
                stats = server.stats()
            finally:
                await server.stop()
            return replies, stats

        replies, stats = run(scenario())
        assert stats["computes"] == 1
        assert stats["dedup_hits"] == self.CONCURRENT - 1
        sources = sorted(r["points"][0]["source"] for r in replies)
        assert sources == ["computed"] + ["dedup"] * (self.CONCURRENT - 1)
        # Every waiter got the owner's exact result.
        reference = replies[0]["points"][0]
        for reply in replies[1:]:
            point = reply["points"][0]
            assert point["metrics"] == reference["metrics"]
            assert point["aged"] == reference["aged"]
            assert point["key"] == reference["key"]

    def test_no_dedup_recomputes(self, tmp_path):
        query = {"component": "mult8", "precision": 8,
                 "scenarios": ["worst10y"], "effort": "high"}

        async def scenario():
            server = await start_server(tmp_path, workers=2, dedup=False)
            try:
                replies = await self._fanout(server, query)
                stats = server.stats()
            finally:
                await server.stop()
            return replies, stats

        replies, stats = run(scenario())
        assert stats["dedup_hits"] == 0
        # Without single-flight, concurrent identical misses burn
        # duplicate computations (the benchmark baseline's behavior) —
        # and still agree bit-for-bit thanks to determinism.
        assert stats["computes"] >= 2
        reference = replies[0]["points"][0]
        for reply in replies[1:]:
            assert reply["points"][0]["metrics"] == reference["metrics"]
            assert reply["points"][0]["aged"] == reference["aged"]


class TestTelemetryEndpoints:
    def test_metrics_prometheus_text_parses(self, tmp_path):
        """Acceptance: /metrics output parses line-by-line under the
        Prometheus text-format 0.0.4 grammar."""
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? '
            r'(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$')
        comment = re.compile(r"^# (HELP|TYPE) repro_[a-zA-Z0-9_]+")

        async def scenario():
            server = await start_server(tmp_path)
            try:
                async with ServeClient(server.host, server.port) as client:
                    await client.healthz()
                    return await client.prometheus()
            finally:
                await server.stop()

        text = run(scenario())
        assert isinstance(text, str) and text
        seen_types = 0
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert comment.match(line), line
                seen_types += line.startswith("# TYPE")
                continue
            assert sample.match(line), line
        assert seen_types >= 2
        assert "repro_serve_requests_total" in text
        assert 'repro_serve_latency_ms_bucket{le="+Inf"}' in text

    def test_timeseries_endpoint(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path, ts_interval=0.05)
            try:
                async with ServeClient(server.host, server.port) as client:
                    await client.healthz()
                    deadline = asyncio.get_event_loop().time() + 5.0
                    while len(server.recorder) < 3:
                        assert asyncio.get_event_loop().time() < deadline
                        await asyncio.sleep(0.02)
                    doc = await client.timeseries()
                    windowed = await client.timeseries(window_s=0.0)
            finally:
                await server.stop()
            return doc, windowed

        doc, windowed = run(scenario())
        assert doc["interval_s"] == 0.05
        assert len(doc["samples"]) >= 3
        last = doc["samples"][-1]
        assert last["counters"]["serve.requests"] >= 1
        assert doc["samples"][0]["t"] <= last["t"]
        assert len(windowed["samples"]) <= len(doc["samples"])

    def test_profile_endpoint_and_conflict(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                async with ServeClient(server.host, server.port) as client:
                    report = await client.profile(seconds=0.05)
                    chrome = await client.profile(seconds=0.05,
                                                  fmt="chrome")
                    with pytest.raises(ServeError) as exc:
                        await client.profile(seconds=0)
                    bad_seconds = exc.value.status
                    # A second profile while one runs: 409 Conflict.
                    slow = asyncio.ensure_future(
                        client.profile(seconds=0.5))
                    await asyncio.sleep(0.1)
                    async with ServeClient(server.host,
                                           server.port) as other:
                        with pytest.raises(ServeError) as exc:
                            await other.profile(seconds=0.05)
                        conflict = exc.value.status
                    await slow
            finally:
                await server.stop()
            return report, chrome, bad_seconds, conflict

        report, chrome, bad_seconds, conflict = run(scenario())
        assert report["duration_s"] >= 0.04
        assert report["interval_s"] > 0
        assert isinstance(report["collapsed"], str)
        assert isinstance(report["top"], list)
        assert isinstance(chrome["traceEvents"], list)
        assert bad_seconds == 400
        assert conflict == 409

    def test_stats_carries_slo_and_timeseries_sections(self, tmp_path):
        async def scenario():
            server = await start_server(
                tmp_path, ts_interval=0.05,
                slos=["latency:p99:500:1", "errors:99.9:1"])
            try:
                async with ServeClient(server.host, server.port) as client:
                    await client.healthz()
                    deadline = asyncio.get_event_loop().time() + 5.0
                    while not server._slo_results:
                        assert asyncio.get_event_loop().time() < deadline
                        await asyncio.sleep(0.02)
                    return await client.stats()
            finally:
                await server.stop()

        stats = run(scenario())
        assert len(stats["slo"]["objectives"]) == 2
        names = {o["name"] for o in stats["slo"]["objectives"]}
        assert names == {"latency_p99_under_500ms", "availability_99.9"}
        assert stats["slo"]["worst_burn_rate"] >= 0.0
        assert stats["timeseries"]["samples"] >= 1
        assert stats["timeseries"]["interval_s"] == 0.05

    def test_access_log_lines(self, tmp_path, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.serve.access"):
            async def scenario():
                server = await start_server(tmp_path)
                try:
                    async with ServeClient(server.host,
                                           server.port) as client:
                        await client.characterize(
                            dict(QUERY, precisions=[8]))
                finally:
                    await server.stop()
            run(scenario())
        lines = [r.getMessage() for r in caplog.records
                 if r.name == "repro.serve.access"]
        assert lines, "no access-log lines emitted"
        line = next(l for l in lines if "path=/v1/characterize" in l)
        assert "method=POST" in line and "status=200" in line
        assert re.search(r"trace=[0-9a-f]{16}", line)
        assert re.search(r"latency_ms=\d+\.\d{3}", line)
        assert "computed:1" in line


class TestDistributedTrace:
    def test_batch_produces_one_connected_span_tree(self, tmp_path):
        """Acceptance: a /v1/batch against a --jobs 4 server yields ONE
        connected span tree — client root -> server request span ->
        worker span — in the exported Chrome trace."""
        from repro.obs import trace as obs_trace

        async def scenario():
            server = await start_server(tmp_path, workers=4)
            try:
                with obs_trace.span("client.root") as root:
                    async with ServeClient(server.host,
                                           server.port) as client:
                        records = [r async for r in client.batch(
                            dict(QUERY, precisions=[8, 7]))]
            finally:
                await server.stop()
            return root, records

        with obs_trace.capture() as tracer:
            root, records = run(scenario())
        assert records[-1]["done"] is True and records[-1]["points"] == 2

        events = [e for e in tracer.chrome_events() if e.get("ph") == "X"]
        by_id = {e["args"]["span_id"]: e for e in events
                 if "span_id" in e.get("args", {})}
        root_event = by_id[root.span_id]

        def chains_to_root(event):
            hops = 0
            while event["args"].get("parent_id") in by_id:
                event = by_id[event["args"]["parent_id"]]
                hops += 1
            return event is root_event and hops

        requests = [e for e in events if e["name"] == "serve.request"]
        batch_requests = [e for e in requests
                          if chains_to_root(e)]
        assert batch_requests, "no serve.request chained to client root"

        workers = [e for e in events
                   if e["name"] == "characterize.point"
                   and chains_to_root(e)]
        assert len(workers) >= 1
        # Every span on the chain shares the client's trace id: one
        # trace, client -> server -> pool worker.
        for event in workers + batch_requests:
            assert event["args"]["trace_id"] == root.trace_id
        # The worker spans really crossed a process boundary.
        assert any(e["pid"] != os.getpid() for e in workers)


class TestDrainShutdown:
    def test_max_requests_flushes_final_timeseries_sample(self, tmp_path):
        jsonl = str(tmp_path / "ts.jsonl")

        async def scenario():
            server = CharacterizationServer(
                str(tmp_path / "cache"), workers=1, max_requests=2,
                ts_interval=30.0, ts_jsonl=jsonl)
            with obs_metrics.scoped():
                task = asyncio.ensure_future(
                    server.run(install_signal_handlers=False))
                while server.port == 0 or server._server is None:
                    await asyncio.sleep(0.01)
                client = ServeClient(server.host, server.port)
                await client.healthz()
                await client.healthz()
                await client.close()
                await asyncio.wait_for(task, timeout=10.0)
        run(scenario())

        import json
        with open(jsonl) as handle:
            rows = [json.loads(line) for line in handle]
        # The 30s sampling interval never fired: every recorded sample
        # is the baseline + the final drain-time flush, and the final
        # one saw both requests.
        assert rows
        assert rows[-1]["counters"]["serve.requests"] == 2

    def test_stop_drains_inflight_request(self, tmp_path):
        """Shutdown must complete in-flight work: a cold characterize
        issued just before stop() still gets its full answer."""
        async def scenario():
            server = await start_server(tmp_path, workers=1,
                                        drain_grace_s=30.0)
            client = ServeClient(server.host, server.port)
            inflight = asyncio.ensure_future(
                client.characterize(dict(QUERY, precisions=[8])))
            # Wait until the request is actually on the wire/busy.
            deadline = asyncio.get_event_loop().time() + 5.0
            while not server._busy:
                assert asyncio.get_event_loop().time() < deadline
                await asyncio.sleep(0.005)
            await server.stop()
            reply = await inflight
            await client.close()
            return reply

        reply = run(scenario())
        assert reply["points"][0]["source"] == "computed"

    def test_draining_closes_keepalive_connections(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            client = ServeClient(server.host, server.port)
            await client.healthz()  # idle keep-alive connection now open
            await asyncio.wait_for(server.stop(), timeout=5.0)
            await client.close()
        run(scenario())


class TestCLIServe:
    def test_serve_smoke_cold_warm_shutdown(self, tmp_path):
        """Tier-1 smoke: ephemeral port, cold + warm query, graceful
        shutdown with a zero exit code."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--cache-dir", str(tmp_path), "--port", "0", "--jobs", "1"],
            env=env, cwd=root,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, "no listening banner in %r" % banner
            host, port = match.group(1), int(match.group(2))
            query = {"component": "adder8", "precision": 8,
                     "scenarios": ["worst10y"], "effort": "low"}
            status, cold = http_request(host, port, "POST",
                                        "/v1/characterize", query)
            assert status == 200
            assert cold["points"][0]["source"] == "computed"
            status, warm = http_request(host, port, "POST",
                                        "/v1/characterize", query)
            assert status == 200
            assert warm["points"][0]["source"] in ("disk", "mem")
            assert warm["points"][0]["metrics"] == \
                cold["points"][0]["metrics"]
            status, __ = http_request(host, port, "POST", "/v1/shutdown")
            assert status == 200
            out, __ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "served 3 requests" in out

    def test_serve_requires_cache_dir(self, capsys, monkeypatch):
        from repro.cli import main
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["serve"]) == 2
        assert "cache directory" in capsys.readouterr().err
