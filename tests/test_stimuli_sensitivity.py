"""Tests for the stimulus generators and the K-sensitivity analysis."""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.core import precision_sensitivity
from repro.core.sensitivity import SensitivityReport
from repro.rtl import Adder
from repro.sim import STIMULUS_NAMES, make_stimulus


class TestStimuli:
    @pytest.mark.parametrize("name", STIMULUS_NAMES)
    def test_in_range_and_deterministic(self, name):
        a, b = make_stimulus(name, 12, 500, seed=3)
        a2, b2 = make_stimulus(name, 12, 500, seed=3)
        assert np.array_equal(a, a2) and np.array_equal(b, b2)
        lo, hi = -(1 << 11), (1 << 11) - 1
        for ops in (a, b):
            assert ops.shape == (500,)
            assert ops.min() >= lo and ops.max() <= hi

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_stimulus("pink_noise", 8, 10)

    def test_sparse_is_mostly_zero(self):
        a, b = make_stimulus("sparse", 16, 2000, seed=1)
        assert (a == 0).mean() > 0.7
        assert (b == 0).mean() > 0.7

    def test_bursty_has_low_toggle_rate(self):
        a, __ = make_stimulus("bursty", 16, 2048, seed=1)
        changes = (a[1:] != a[:-1]).mean()
        assert changes < 0.1

    def test_sign_alternating_flips_every_cycle(self):
        a, b = make_stimulus("sign_alternating", 16, 100, seed=1)
        nonzero = (a[:-1] != 0) & (a[1:] != 0)
        assert (np.sign(a[:-1]) != np.sign(a[1:]))[nonzero].all()

    def test_gray_toggles_one_bit(self):
        a, __ = make_stimulus("gray", 10, 512)
        xored = (a[1:] ^ a[:-1]) & ((1 << 10) - 1)
        pop = np.array([bin(int(v)).count("1") for v in xored])
        assert (pop == 1).all()

    def test_walking_ones_single_bit_set(self):
        a, __ = make_stimulus("walking_ones", 8, 64)
        for value in a:
            pattern = int(value) & 0xFF
            assert bin(pattern).count("1") == 1


class TestSensitivity:
    @pytest.fixture(scope="class")
    def report(self, lib):
        return precision_sensitivity(
            Adder(12), lib, worst_case(10),
            factors=(0.6, 1.0, 1.4, 1.8),
            precisions=range(12, 4, -1), effort="high")

    def test_nominal_matches_factor_one(self, report):
        assert report.nominal_k == report.k_by_factor[1.0]
        assert report.nominal_k is not None

    def test_worse_model_never_needs_less_truncation(self, report):
        assert report.monotone()
        assert report.k_by_factor[1.8] is None or \
            report.k_by_factor[1.8] <= report.nominal_k

    def test_gentler_model_never_needs_more(self, report):
        assert report.k_by_factor[0.6] >= report.nominal_k

    def test_tolerated_overshoot_at_least_nominal(self, report):
        tol = report.tolerated_overshoot()
        assert tol is not None and tol >= 1.0

    def test_not_compensable_reported_as_none(self):
        rep = SensitivityReport("10y_worst", nominal_k=None,
                                k_by_factor={1.0: None})
        assert rep.tolerated_overshoot() is None
