"""Tests for aging-aware static timing analysis."""

import pytest

from repro.aging import balance_case, gate_delays, guardband_ps, worst_case
from repro.netlist import NetlistBuilder
from repro.sta import (analyze, critical_path, critical_path_delay,
                       logic_depth, per_output_arrivals)
from repro.synth.sizing import gate_slacks, required_times


def chain_netlist(length):
    builder = NetlistBuilder(name="chain%d" % length)
    a = builder.inputs(1, "a")[0]
    cur = a
    for __ in range(length):
        cur = builder.inv(cur)
    return builder.outputs([cur])


def diamond_netlist():
    """Two reconvergent paths of different depth."""
    builder = NetlistBuilder(name="diamond")
    a, b = builder.inputs(2, "x")
    short = builder.inv(a)
    long = builder.inv(builder.inv(builder.inv(b)))
    out = builder.and2(short, long)
    return builder.outputs([out])


class TestArrivals:
    def test_chain_delay_accumulates(self, lib):
        net = chain_netlist(4)
        report = analyze(net, lib)
        arrivals = [report.arrivals[g.output]
                    for g in net.topological_gates()]
        assert arrivals == sorted(arrivals)
        assert report.critical_path_ps == pytest.approx(arrivals[-1])

    def test_longer_chain_is_slower(self, lib):
        assert critical_path_delay(chain_netlist(8), lib) > \
            critical_path_delay(chain_netlist(4), lib)

    def test_inputs_arrive_at_zero(self, lib):
        net = diamond_netlist()
        report = analyze(net, lib)
        for pi in net.primary_inputs:
            assert report.arrivals[pi] == 0.0

    def test_diamond_takes_long_branch(self, lib):
        net = diamond_netlist()
        report = analyze(net, lib)
        path = critical_path(net, report)
        assert path.depth == 4  # 3 inverters + AND

    def test_po_that_is_pi_has_zero_arrival(self, lib):
        builder = NetlistBuilder(name="wire")
        a = builder.inputs(1, "a")[0]
        net = builder.outputs([a])
        assert critical_path_delay(net, lib) == 0.0


class TestAgingAwareness:
    def test_aged_is_slower(self, lib, adder8):
        fresh = critical_path_delay(adder8, lib)
        aged = critical_path_delay(adder8, lib, scenario=worst_case(10))
        assert aged > fresh

    def test_aging_monotone_in_time_and_stress(self, lib, adder8):
        d1w = critical_path_delay(adder8, lib, scenario=worst_case(1))
        d10w = critical_path_delay(adder8, lib, scenario=worst_case(10))
        d10b = critical_path_delay(adder8, lib, scenario=balance_case(10))
        assert d1w < d10w
        assert d10b < d10w

    def test_guardband_matches_difference(self, lib, adder8):
        scenario = worst_case(10)
        gb = guardband_ps(adder8, lib, scenario)
        fresh = critical_path_delay(adder8, lib)
        aged = critical_path_delay(adder8, lib, scenario=scenario)
        assert gb == pytest.approx(aged - fresh)
        assert gb > 0

    def test_every_gate_delay_scales_up(self, lib, adder8):
        fresh = gate_delays(adder8, lib)
        aged = gate_delays(adder8, lib, scenario=worst_case(10))
        for uid in fresh:
            assert aged[uid] > fresh[uid]

    def test_worst_case_bounded_by_max_multiplier(self, lib, adder8):
        from repro.aging import DEFAULT_BTI
        fresh = critical_path_delay(adder8, lib)
        aged = critical_path_delay(adder8, lib, scenario=worst_case(10))
        worst_mult = max(
            DEFAULT_BTI.cell_multiplier(1, 1, 10, wp=c.wp, wn=c.wn)
            for c in lib)
        assert aged <= fresh * worst_mult * (1 + 1e-9)

    def test_report_metadata(self, lib, adder8):
        report = analyze(adder8, lib, scenario=worst_case(10))
        assert report.scenario_label == "10y_worst"
        assert analyze(adder8, lib).scenario_label == "fresh"

    def test_slack_sign(self, lib, adder8):
        report = analyze(adder8, lib, scenario=worst_case(10))
        fresh_cp = critical_path_delay(adder8, lib)
        assert report.slack_ps(fresh_cp) < 0
        assert report.slack_ps(report.critical_path_ps) == pytest.approx(0)


class TestPathExtraction:
    def test_path_delay_matches_report(self, lib, adder8):
        report = analyze(adder8, lib)
        path = critical_path(adder8, report)
        assert path.delay_ps == pytest.approx(report.critical_path_ps)
        total = sum(report.gate_delays[uid] for uid in path.gates)
        assert total == pytest.approx(path.delay_ps)

    def test_path_is_connected(self, lib, adder8):
        report = analyze(adder8, lib)
        path = critical_path(adder8, report)
        gates = {g.uid: g for g in adder8.gates}
        for i, uid in enumerate(path.gates):
            assert gates[uid].output == path.nets[i + 1]
            assert path.nets[i] in gates[uid].inputs

    def test_logic_depth(self, lib):
        assert logic_depth(chain_netlist(6)) == 6
        assert logic_depth(diamond_netlist()) == 4

    def test_per_output_arrivals_sorted(self, lib, adder8):
        report = analyze(adder8, lib)
        rows = per_output_arrivals(adder8, report)
        delays = [r[2] for r in rows]
        assert delays == sorted(delays, reverse=True)
        assert len(rows) == len(adder8.primary_outputs)


class TestRequiredTimes:
    def test_required_times_bound_arrivals(self, lib, adder8):
        report = analyze(adder8, lib)
        cp = report.critical_path_ps
        required = required_times(adder8, report, cp)
        for net, req in required.items():
            assert report.arrivals[net] <= req + 1e-9

    def test_critical_gates_have_zero_slack(self, lib, adder8):
        report = analyze(adder8, lib)
        cp = report.critical_path_ps
        slacks = gate_slacks(adder8, report, cp)
        assert min(slacks.values()) == pytest.approx(0.0, abs=1e-9)
        path = critical_path(adder8, report)
        assert slacks[path.gates[-1]] == pytest.approx(0.0, abs=1e-9)


class _Foreign:
    """Minimal stand-in netlist with mismatched primary outputs."""

    name = "foreign"

    def __init__(self, primary_outputs):
        self.primary_outputs = primary_outputs


class TestPoArrivals:
    def test_in_po_order(self, lib, adder8):
        report = analyze(adder8, lib)
        assert report.po_arrivals(adder8) == \
            [report.arrivals[net] for net in adder8.primary_outputs]

    def test_missing_po_raises_by_default(self, lib, adder8):
        report = analyze(adder8, lib)
        foreign = _Foreign([max(report.arrivals) + 1])
        with pytest.raises(KeyError, match="no arrival time"):
            report.po_arrivals(foreign)

    def test_missing_po_warns_to_zero(self, lib, adder8):
        report = analyze(adder8, lib)
        foreign = _Foreign([max(report.arrivals) + 1,
                            max(report.arrivals) + 2])
        assert report.po_arrivals(foreign, missing="warn") == [0.0, 0.0]

    def test_invalid_mode_rejected(self, lib, adder8):
        report = analyze(adder8, lib)
        with pytest.raises(ValueError, match="raise|warn"):
            report.po_arrivals(adder8, missing="ignore")
