"""Tests for component characterization (Section IV)."""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.core import (ActualCaseSpec, AgingApproximationLibrary,
                        ComponentCharacterization, characterize,
                        component_key)
from repro.rtl import Adder, Multiplier


@pytest.fixture(scope="module")
def adder_entry(lib):
    return characterize(Adder(12), lib,
                        scenarios=[worst_case(1), worst_case(10)],
                        precisions=range(12, 5, -1), effort="high")


class TestCharacterize:
    def test_all_points_present(self, adder_entry):
        assert adder_entry.precisions == list(range(12, 5, -1))
        assert adder_entry.scenario_labels == ["1y_worst", "10y_worst"]
        for p in adder_entry.precisions:
            assert adder_entry.fresh_ps[p] > 0
            for label in adder_entry.scenario_labels:
                assert adder_entry.aged_ps[(p, label)] > 0

    def test_aged_exceeds_fresh_everywhere(self, adder_entry):
        for p in adder_entry.precisions:
            for label in adder_entry.scenario_labels:
                assert adder_entry.aged_ps[(p, label)] > \
                    adder_entry.fresh_ps[p]

    def test_delay_nonincreasing_with_truncation(self, adder_entry):
        fresh = [adder_entry.fresh_ps[p] for p in adder_entry.precisions]
        assert all(a >= b - 1e-9 for a, b in zip(fresh, fresh[1:]))

    def test_area_shrinks_with_truncation(self, adder_entry):
        areas = [adder_entry.area_um2[p] for p in adder_entry.precisions]
        assert areas[0] > areas[-1]

    def test_ten_years_worse_than_one(self, adder_entry):
        for p in adder_entry.precisions:
            assert adder_entry.aged_ps[(p, "10y_worst")] > \
                adder_entry.aged_ps[(p, "1y_worst")]

    def test_default_precision_sweep(self, lib):
        entry = characterize(Adder(6), lib, scenarios=[worst_case(10)],
                             effort="low")
        assert max(entry.precisions) == 6
        assert min(entry.precisions) >= 1

    def test_key(self):
        assert component_key(Adder(12)) == "adder_w12"
        assert component_key(Multiplier(8, precision=6)) == "multiplier_w8"


class TestQueries:
    def test_required_precision_eq2(self, adder_entry):
        k = adder_entry.required_precision("10y_worst")
        assert k is not None
        assert adder_entry.aged_ps[(k, "10y_worst")] <= \
            adder_entry.fresh_delay_ps()
        # k is maximal: one more bit of precision would violate.
        if k + 1 in adder_entry.fresh_ps:
            assert adder_entry.aged_ps[(k + 1, "10y_worst")] > \
                adder_entry.fresh_delay_ps()

    def test_required_precision_explicit_target(self, adder_entry):
        generous = adder_entry.required_precision("10y_worst",
                                                  target_ps=1e9)
        assert generous == adder_entry.width
        assert adder_entry.required_precision("10y_worst",
                                              target_ps=0.0) is None

    def test_longer_life_needs_more_truncation(self, adder_entry):
        assert adder_entry.required_precision("10y_worst") <= \
            adder_entry.required_precision("1y_worst")

    def test_guardband_definitions(self, adder_entry):
        gb_full = adder_entry.guardband_ps("10y_worst")
        assert gb_full > 0
        k = adder_entry.required_precision("10y_worst")
        assert adder_entry.guardband_ps("10y_worst", k) == 0.0
        assert adder_entry.guardband_narrowing("10y_worst", k) == 1.0
        assert adder_entry.guardband_narrowing("10y_worst",
                                               adder_entry.width) == 0.0

    def test_unknown_scenario_raises(self, adder_entry):
        with pytest.raises(KeyError, match="not characterized"):
            adder_entry.aged_delay_ps(12, "5y_worst")

    def test_to_rows(self, adder_entry):
        rows = adder_entry.to_rows()
        assert len(rows) == len(adder_entry.precisions)
        assert {"precision", "fresh_ps", "10y_worst_ps"} <= set(rows[0])


class TestActualCase:
    def test_actual_case_between_fresh_and_worst(self, lib, rng):
        component = Adder(8)
        a, b = component.random_operands(300, rng=rng)
        entry = characterize(
            component, lib,
            scenarios=[worst_case(10),
                       ActualCaseSpec(10, "actual_nd", (a, b))],
            precisions=[8, 6], effort="high")
        assert "10y_actual_nd" in entry.scenario_labels
        for p in (8, 6):
            actual = entry.aged_ps[(p, "10y_actual_nd")]
            assert entry.fresh_ps[p] < actual
            assert actual <= entry.aged_ps[(p, "10y_worst")]

    def test_actual_case_never_demands_more_than_worst(self, lib, rng):
        component = Adder(8)
        a, b = component.random_operands(300, rng=rng)
        entry = characterize(
            component, lib,
            scenarios=[worst_case(10),
                       ActualCaseSpec(10, "actual_nd", (a, b))],
            precisions=range(8, 3, -1), effort="high")
        k_actual = entry.required_precision("10y_actual_nd")
        k_worst = entry.required_precision("10y_worst")
        if k_worst is not None:
            assert k_actual >= k_worst

    def test_spec_label(self):
        spec = ActualCaseSpec(10, "idct", (np.zeros(1), np.zeros(1)))
        assert spec.scenario_label == "10y_idct"


class TestSerialization:
    def test_roundtrip(self, adder_entry):
        data = adder_entry.to_dict()
        back = ComponentCharacterization.from_dict(data)
        assert back.key == adder_entry.key
        assert back.precisions == adder_entry.precisions
        assert back.aged_ps == adder_entry.aged_ps
        assert back.fresh_ps == adder_entry.fresh_ps

    def test_json_roundtrip_via_library(self, adder_entry, tmp_path):
        store = AgingApproximationLibrary([adder_entry])
        path = tmp_path / "lib.json"
        store.save(path)
        loaded = AgingApproximationLibrary.load(path)
        assert loaded.keys() == store.keys()
        entry = loaded.get(adder_entry.key)
        assert entry.required_precision("10y_worst") == \
            adder_entry.required_precision("10y_worst")


class TestLibraryStore:
    def test_add_get_contains(self, adder_entry):
        store = AgingApproximationLibrary()
        assert adder_entry.key not in store
        store.add(adder_entry)
        assert adder_entry.key in store
        assert store.get(Adder(12)) is adder_entry
        assert len(store) == 1

    def test_missing_lookup_returns_none(self):
        store = AgingApproximationLibrary()
        assert store.get("nonexistent_w8") is None

    def test_required_precision_delegates(self, adder_entry):
        store = AgingApproximationLibrary([adder_entry])
        assert store.required_precision("adder_w12", "10y_worst") == \
            adder_entry.required_precision("10y_worst")
        with pytest.raises(KeyError):
            store.required_precision("mac_w99", "10y_worst")

    def test_entries_sorted_by_key(self, lib, adder_entry):
        other = characterize(Adder(6), lib, scenarios=[worst_case(10)],
                             precisions=[6, 5], effort="low")
        store = AgingApproximationLibrary([adder_entry, other])
        assert store.keys() == sorted([adder_entry.key, other.key])
