"""Functional tests for all adder architectures, including truncation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rtl import (Adder, CarryLookaheadAdder, KoggeStoneAdder,
                       RippleCarryAdder)
from repro.synth import synthesize_netlist

from helpers import run_netlist

ARCHITECTURES = [RippleCarryAdder, CarryLookaheadAdder, KoggeStoneAdder]


@pytest.mark.parametrize("cls", ARCHITECTURES)
def test_exhaustive_4bit(lib, cls):
    component = cls(4)
    values = np.arange(-8, 8, dtype=np.int64)
    a, b = np.meshgrid(values, values)
    a, b = a.ravel(), b.ravel()
    assert np.array_equal(run_netlist(component, lib, (a, b)),
                          component.exact(a, b))


@pytest.mark.parametrize("cls", ARCHITECTURES)
@pytest.mark.parametrize("width", [2, 3, 5, 8])
def test_random_widths(lib, cls, width, rng):
    component = cls(width)
    a, b = component.random_operands(300, rng=rng, distribution="uniform")
    assert np.array_equal(run_netlist(component, lib, (a, b)),
                          component.exact(a, b))


@pytest.mark.parametrize("cls", ARCHITECTURES)
def test_wide_adders_against_golden(lib, cls, rng):
    component = cls(32)
    a, b = component.random_operands(300, rng=rng)
    assert np.array_equal(run_netlist(component, lib, (a, b)),
                          component.exact(a, b))


@given(a=st.integers(-(1 << 31), (1 << 31) - 1),
       b=st.integers(-(1 << 31), (1 << 31) - 1))
def test_exact_is_wraparound_sum(a, b):
    component = Adder(32)
    result = int(component.exact(np.array([a]), np.array([b]))[0])
    assert result == ((a + b + (1 << 31)) % (1 << 32)) - (1 << 31)


class TestTruncation:
    @pytest.mark.parametrize("cls", ARCHITECTURES)
    @pytest.mark.parametrize("precision", [6, 4, 2])
    def test_truncated_netlist_matches_approximate(self, lib, cls,
                                                   precision, rng):
        component = cls(8, precision=precision)
        a, b = component.random_operands(400, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.approximate(a, b))

    def test_truncation_reduces_gate_count(self, lib):
        full = synthesize_netlist(Adder(16), lib, effort="high")
        cut = synthesize_netlist(Adder(16, precision=10), lib,
                                 effort="high")
        assert cut.num_gates < full.num_gates

    def test_truncation_error_bound(self, rng):
        component = Adder(12, precision=8)
        a, b = component.random_operands(2000, rng=rng,
                                         distribution="uniform")
        err = np.abs(component.exact(a, b) - component.approximate(a, b))
        # Wraparound can alias the error; ignore wrapped cases.
        plain = (np.abs(a.astype(np.int64) + b.astype(np.int64))
                 < (1 << 11) - (1 << 5))
        assert err[plain].max() <= component.max_error_bound()

    def test_full_precision_is_exact(self, rng):
        component = Adder(8)
        a, b = component.random_operands(100, rng=rng)
        assert np.array_equal(component.exact(a, b),
                              component.approximate(a, b))

    def test_with_precision_copies(self):
        base = CarryLookaheadAdder(16, group=8)
        cut = base.with_precision(12)
        assert cut.precision == 12
        assert cut.group == 8
        assert base.precision == 16

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            Adder(8, precision=9)
        with pytest.raises(ValueError):
            Adder(8, precision=0)


class TestArchitectureProperties:
    def test_names_encode_parameters(self):
        assert Adder(32).name == "adder_w32"
        assert Adder(32, precision=24).name == "adder_w32_p24"
        assert RippleCarryAdder(8).name == "rca_w8"

    def test_depth_ordering(self, lib):
        """Prefix < lookahead < ripple logic depth at equal width."""
        from repro.sta import logic_depth
        depths = {}
        for cls in ARCHITECTURES:
            net = synthesize_netlist(cls(16), lib, effort="high")
            depths[cls.__name__] = logic_depth(net)
        assert depths["KoggeStoneAdder"] < depths["CarryLookaheadAdder"]
        assert depths["CarryLookaheadAdder"] < depths["RippleCarryAdder"]

    def test_cla_group_parameter(self, lib, rng):
        for group in (2, 3, 8):
            component = CarryLookaheadAdder(8, group=group)
            a, b = component.random_operands(200, rng=rng,
                                             distribution="uniform")
            assert np.array_equal(run_netlist(component, lib, (a, b)),
                                  component.exact(a, b))

    def test_cla_rejects_tiny_group(self):
        with pytest.raises(ValueError):
            CarryLookaheadAdder(8, group=1)

    def test_operand_metadata(self):
        component = Adder(8)
        assert component.operand_widths == [8, 8]
        assert component.output_width == 8
        assert component.operand_names == ["a", "b"]
