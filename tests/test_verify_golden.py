"""Golden-model tests: the pure-Python references are *independently*
correct (checked against plain Python arithmetic) and agree with both
the NumPy arithmetic models and the synthesized netlists.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rtl import (Adder, BoothMultiplier, FixedPointFIR,
                       FixedPointTransform8, Multiplier,
                       MultiplyAccumulate, RippleCarryAdder, lowpass_taps)
from repro.verify import check_golden, golden_model
from repro.verify.golden import (from_bits, golden_add,
                                 golden_booth_multiply, golden_descale,
                                 golden_dct_2d, golden_fir, golden_mac,
                                 golden_multiply, to_bits, wrap)

pytestmark = pytest.mark.verify


def _wrapped(value, width):
    mask = (1 << width) - 1
    value &= mask
    if value >> (width - 1):
        value -= 1 << width
    return value


class TestPrimitives:
    @given(st.integers(-300, 300))
    def test_wrap_matches_twos_complement(self, value):
        assert wrap(value, 8) == _wrapped(value, 8)

    @given(st.integers(-128, 127))
    def test_bits_round_trip(self, value):
        assert from_bits(to_bits(value, 8)) == value

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_golden_add_is_wrapped_sum(self, a, b):
        assert golden_add(a, b, 8) == _wrapped(a + b, 8)

    @given(st.integers(-32, 31), st.integers(-32, 31))
    def test_golden_multiply_is_wrapped_product(self, a, b):
        assert golden_multiply(a, b, 6) == _wrapped(a * b, 12)

    @given(st.integers(-32, 31), st.integers(-32, 31))
    def test_booth_agrees_with_digit_serial(self, a, b):
        assert golden_booth_multiply(a, b, 6) == golden_multiply(a, b, 6)

    @given(st.integers(-8, 7), st.integers(-8, 7), st.integers(-128, 127))
    def test_golden_mac_is_wrapped_fma(self, a, b, c):
        # The MAC accumulates in the 2*width product register.
        assert golden_mac(a, b, c, 4) == _wrapped(a * b + c, 8)

    @given(st.integers(-1000, 1000))
    def test_descale_round_half_up(self, value):
        scaled = value << 4
        assert golden_descale(scaled, 4) == value
        assert golden_descale(scaled + 8, 4) == value + 1
        assert golden_descale(scaled + 7, 4) == value


class TestDispatch:
    def test_unknown_family_raises_keyerror(self):
        class Odd:
            family = "divider"
            width = 8
            precision = 8
        with pytest.raises(KeyError, match="divider"):
            golden_model(Odd())

    def test_model_names_carry_configuration(self):
        model = golden_model(Multiplier(6, precision=4))
        assert model.__name__ == "golden_multiplier_w6_p4"

    def test_truncation_applied_to_operands(self):
        full = golden_model(Adder(8))
        cut = golden_model(Adder(8, precision=5))
        assert full(3, 5) == 8
        # 3 LSBs tied to zero on both operands.
        assert cut(7, 9) == 8
        assert cut(8, 8) == full(8, 8)


class TestThreeWayDiff:
    """check_golden: golden vs arithmetic vs netlist on real components."""

    def test_adder8(self, lib, adder8):
        assert check_golden(Adder(8), lib, vectors=32, rng=1,
                            netlist=adder8) == []

    def test_adder8_reduced_precision(self, lib):
        assert check_golden(Adder(8, precision=5), lib, vectors=24,
                            rng=2) == []

    def test_ripple_carry(self, lib):
        assert check_golden(RippleCarryAdder(6), lib, vectors=24,
                            rng=3) == []

    def test_multiplier6(self, lib, mult6):
        assert check_golden(Multiplier(6), lib, vectors=32, rng=4,
                            netlist=mult6) == []

    def test_booth(self, lib):
        assert check_golden(BoothMultiplier(5, precision=3), lib,
                            vectors=24, rng=5) == []

    def test_mac4(self, lib, mac4):
        assert check_golden(MultiplyAccumulate(4), lib, vectors=32,
                            rng=6, netlist=mac4) == []

    def test_without_library_checks_arithmetic_only(self):
        assert check_golden(Adder(8), vectors=16, rng=7) == []

    def test_assert_golden_fixture(self, assert_golden):
        assert_golden(Adder(6), vectors=16)


class TestDatapathGolden:
    def test_fir_matches_fixed_point_filter(self, rng):
        taps = lowpass_taps(taps=8)
        fir = FixedPointFIR(taps)
        signal = rng.integers(-500, 500, size=40)
        expected = fir.filter(signal)
        got = golden_fir(taps, signal, fir.coeff_bits, fir.align_bits)
        assert got == expected.tolist()

    def test_dct_forward_matches(self, rng):
        t = FixedPointTransform8()
        block = rng.integers(-128, 128, size=(8, 8))
        expected = t.forward_2d(block)
        got = golden_dct_2d(block, t.coeffs, t.coeff_bits,
                            t.coeff_align_bits)
        assert np.array_equal(np.array(got), expected)

    def test_dct_inverse_matches(self, rng):
        t = FixedPointTransform8()
        block = rng.integers(-1024, 1024, size=(8, 8))
        expected = t.inverse_2d(block)
        got = golden_dct_2d(block, t.coeffs, t.coeff_bits,
                            t.coeff_align_bits, inverse=True)
        assert np.array_equal(np.array(got), expected)
