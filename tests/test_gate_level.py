"""Tests for the gate-level (timing-error) arithmetic models."""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.approx import GateLevelArithmetic, TimedComponentModel
from repro.rtl import Adder, KoggeStoneAdder, Multiplier


@pytest.fixture(scope="module")
def fresh_adder_model(lib):
    return TimedComponentModel(Adder(8), lib)


class TestTimedComponentModel:
    def test_fresh_model_is_exact(self, lib, fresh_adder_model, rng):
        component = fresh_adder_model.component
        a, b = component.random_operands(500, rng=rng)
        assert np.array_equal(fresh_adder_model.apply(a, b),
                              component.exact(a, b))

    def test_default_clock_is_fresh_critical_path(self, fresh_adder_model):
        assert fresh_adder_model.t_clock_ps == \
            pytest.approx(fresh_adder_model.fresh_delay_ps)

    def test_explicit_clock(self, lib):
        model = TimedComponentModel(Adder(8), lib, t_clock_ps=123.0)
        assert model.t_clock_ps == 123.0

    def test_preserves_operand_shape(self, lib, fresh_adder_model, rng):
        a = rng.integers(-100, 100, (4, 5))
        b = rng.integers(-100, 100, (4, 5))
        out = fresh_adder_model.apply(a, b)
        assert out.shape == (4, 5)

    def test_error_statistics_fields(self, lib, fresh_adder_model, rng):
        component = fresh_adder_model.component
        a, b = component.random_operands(300, rng=rng)
        stats = fresh_adder_model.error_statistics(a, b)
        assert stats["cycles"] == 300
        assert stats["error_rate"] == 0.0
        assert stats["max_abs_error"] == 0

    def test_aged_prefix_component_errs(self, lib, rng):
        model = TimedComponentModel(KoggeStoneAdder(32), lib,
                                    scenario=worst_case(10))
        a, b = model.component.random_operands(4000, rng=rng)
        stats = model.error_statistics(a, b)
        assert stats["error_rate"] > 0.01
        assert stats["max_abs_error"] > 0

    def test_tight_clock_forces_errors(self, lib, rng):
        # Clocking any component at half its critical path must break it.
        model = TimedComponentModel(Adder(8), lib)
        tight = TimedComponentModel(Adder(8), lib,
                                    t_clock_ps=model.fresh_delay_ps / 2)
        a, b = model.component.random_operands(1000, rng=rng)
        assert tight.error_statistics(a, b)["error_rate"] > 0.05


class TestGateLevelArithmetic:
    def test_fallback_paths_are_exact(self, rng):
        model = GateLevelArithmetic()
        a = rng.integers(-100, 100, 50)
        b = rng.integers(-100, 100, 50)
        assert np.array_equal(model.mul(a, b), a * b)
        assert np.array_equal(model.add(a, b), a + b)

    def test_mul_routes_through_component(self, lib, rng):
        mul_model = TimedComponentModel(Multiplier(6), lib)
        model = GateLevelArithmetic(mul_model=mul_model)
        a = rng.integers(-32, 32, 100)
        b = rng.integers(-32, 32, 100)
        assert np.array_equal(model.mul(a, b), a * b)  # fresh -> exact

    def test_add_routes_through_component(self, lib,
                                          fresh_adder_model, rng):
        model = GateLevelArithmetic(add_model=fresh_adder_model)
        a = rng.integers(-50, 50, 100)
        b = rng.integers(-50, 50, 100)
        assert np.array_equal(model.add(a, b), a + b)

    def test_label_mentions_scenarios(self, lib):
        aged = TimedComponentModel(Adder(8), lib, scenario=worst_case(10))
        model = GateLevelArithmetic(mul_model=aged)
        assert "10y_worst" in model.label
        fresh = GateLevelArithmetic(
            add_model=TimedComponentModel(Adder(8), lib))
        assert "fresh" in fresh.label


class TestTimedDatapath:
    def test_shared_clock_is_slowest_fresh_cp(self, lib):
        from repro.approx import timed_datapath_arithmetic
        from repro.rtl import Multiplier
        arith = timed_datapath_arithmetic(lib, mul_component=Multiplier(8),
                                          add_component=Adder(8))
        assert arith.mul_model.t_clock_ps == arith.add_model.t_clock_ps
        assert arith.mul_model.t_clock_ps == pytest.approx(
            max(arith.mul_model.fresh_delay_ps,
                arith.add_model.fresh_delay_ps))

    def test_explicit_clock(self, lib):
        from repro.approx import timed_datapath_arithmetic
        arith = timed_datapath_arithmetic(lib, add_component=Adder(8),
                                          t_clock_ps=500.0)
        assert arith.add_model.simulator.t_clock_ps == 500.0
        assert arith.mul_model is None

    def test_requires_a_component(self, lib):
        from repro.approx import timed_datapath_arithmetic
        with pytest.raises(ValueError):
            timed_datapath_arithmetic(lib)

    def test_generous_shared_clock_keeps_adder_exact(self, lib, rng):
        # The adder runs far below the multiplier's clock, so it never
        # errs even when aged - the situation inside the IDCT.
        from repro.aging import worst_case
        from repro.approx import timed_datapath_arithmetic
        from repro.rtl import Multiplier
        adder = Adder(8)
        arith = timed_datapath_arithmetic(lib, mul_component=Multiplier(8),
                                          add_component=adder,
                                          scenario=worst_case(10))
        a = rng.integers(-100, 100, 500)
        b = rng.integers(-100, 100, 500)
        assert np.array_equal(arith.add(a, b), adder.exact(a, b))
