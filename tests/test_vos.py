"""Tests for the voltage-overscaling model."""

import pytest
from hypothesis import given, strategies as st

from repro.aging import DEFAULT_BTI
from repro.power import (critical_voltage, delay_multiplier,
                         operating_point, timing_equivalent_clock,
                         vos_sweep)


class TestDelayMultiplier:
    def test_nominal_is_identity(self):
        assert delay_multiplier(DEFAULT_BTI.vdd) == pytest.approx(1.0)

    def test_undervolting_slows(self):
        assert delay_multiplier(1.0) > 1.0
        assert delay_multiplier(0.8) > delay_multiplier(1.0)

    def test_overvolting_speeds_up(self):
        assert delay_multiplier(1.2) < 1.0

    def test_aging_compounds_with_undervolting(self):
        dvth = DEFAULT_BTI.delta_vth(1.0, 10.0)
        assert delay_multiplier(0.9, dvth=dvth) > delay_multiplier(0.9)

    def test_no_overdrive_rejected(self):
        with pytest.raises(ValueError, match="overdrive"):
            delay_multiplier(DEFAULT_BTI.vth)

    @given(vdd=st.floats(min_value=0.7, max_value=1.3))
    def test_monotone_decreasing_in_vdd(self, vdd):
        assert delay_multiplier(vdd) >= delay_multiplier(vdd + 0.01)


class TestOperatingPoint:
    def test_energy_scales_quadratically(self):
        point = operating_point(DEFAULT_BTI.vdd / 2)
        assert point.dynamic_ratio == pytest.approx(0.25)
        assert point.energy_ratio == pytest.approx(0.25)

    def test_leakage_scales_linearly(self):
        assert operating_point(0.55).leakage_ratio == pytest.approx(0.5)

    def test_sweep(self):
        points = vos_sweep([1.1, 1.0, 0.9])
        assert [p.vdd for p in points] == [1.1, 1.0, 0.9]
        delays = [p.delay_multiplier for p in points]
        assert delays == sorted(delays)


class TestEquivalentClock:
    def test_nominal_clock_unchanged(self):
        assert timing_equivalent_clock(100.0, DEFAULT_BTI.vdd) == \
            pytest.approx(100.0)

    def test_undervolted_clock_tightens(self):
        # Emulating a slower (undervolted) circuit at nominal delays
        # means sampling earlier.
        assert timing_equivalent_clock(100.0, 0.9) < 100.0


class TestCriticalVoltage:
    def test_inverts_delay_multiplier(self):
        vdd = critical_voltage(120.0, 100.0)
        assert delay_multiplier(vdd) == pytest.approx(1.2, abs=1e-2)
        assert vdd < DEFAULT_BTI.vdd

    def test_no_slack_means_nominal(self):
        vdd = critical_voltage(100.0, 100.0)
        assert vdd == pytest.approx(DEFAULT_BTI.vdd, abs=1e-3)

    def test_impossible_clock_rejected(self):
        with pytest.raises(ValueError):
            critical_voltage(90.0, 100.0)

    def test_aging_raises_critical_voltage(self):
        dvth = DEFAULT_BTI.delta_vth(1.0, 10.0)
        fresh = critical_voltage(130.0, 100.0)
        aged = critical_voltage(130.0, 100.0, dvth=dvth)
        assert aged > fresh

    def test_aged_circuit_may_have_no_vos_headroom(self):
        # The compounding of aging and undervolting: a clock the fresh
        # circuit could meet at reduced Vdd becomes unreachable aged.
        dvth = DEFAULT_BTI.delta_vth(1.0, 10.0)
        assert critical_voltage(110.0, 100.0) < DEFAULT_BTI.vdd
        with pytest.raises(ValueError):
            critical_voltage(110.0, 100.0, dvth=dvth)
