"""Edge-case coverage for repro.quality.metrics.

The metrics feed every acceptance decision in the flow (30 dB PSNR
threshold, error-rate ladders), so the degenerate inputs — empty
vectors, identical images, custom peaks — must have well-defined
answers rather than NaN surprises.
"""

import math

import numpy as np
import pytest

from repro.quality.metrics import (ACCEPTABLE_PSNR_DB, error_rate,
                                   error_summary, is_acceptable_quality,
                                   max_abs_error, mean_abs_error, mse,
                                   psnr_db, snr_db)


class TestEmptyInputs:
    def test_mse_empty_is_zero(self):
        assert mse([], []) == 0.0

    def test_mean_abs_error_empty_is_zero(self):
        assert mean_abs_error([], []) == 0.0

    def test_max_abs_error_empty_is_zero(self):
        assert max_abs_error([], []) == 0.0

    def test_error_rate_empty_is_zero(self):
        assert error_rate([], []) == 0.0

    def test_error_summary_empty_all_zero(self):
        summary = error_summary(np.array([]), np.array([]))
        assert summary == {"error_rate": 0.0, "mean_abs_error": 0.0,
                           "max_abs_error": 0.0}
        for value in summary.values():
            assert not math.isnan(value)

    def test_empty_2d_shapes(self):
        empty = np.zeros((0, 8))
        assert mse(empty, empty) == 0.0
        assert mean_abs_error(empty, empty) == 0.0


class TestIdenticalInputs:
    def test_psnr_identical_images_is_infinite(self):
        img = np.arange(64, dtype=np.float64).reshape(8, 8)
        assert psnr_db(img, img.copy()) == float("inf")

    def test_infinite_psnr_is_acceptable(self):
        assert is_acceptable_quality(float("inf"))

    def test_snr_identical_signals_is_infinite(self):
        sig = np.sin(np.linspace(0, 4, 100))
        assert snr_db(sig, sig.copy()) == float("inf")

    def test_snr_zero_reference_power(self):
        zeros = np.zeros(16)
        assert snr_db(zeros, np.ones(16)) == float("-inf")


class TestPeakOverride:
    def test_default_peak_is_255(self):
        ref = np.zeros((4, 4))
        bad = np.full((4, 4), 10.0)
        assert psnr_db(ref, bad) == pytest.approx(
            10.0 * math.log10(255.0 ** 2 / 100.0))

    def test_peak_override_shifts_by_ratio(self):
        ref = np.zeros(16)
        bad = np.ones(16)
        wide = psnr_db(ref, bad, peak=1023.0)
        narrow = psnr_db(ref, bad, peak=255.0)
        assert wide - narrow == pytest.approx(
            20.0 * math.log10(1023.0 / 255.0))

    def test_unit_peak(self):
        ref = np.zeros(4)
        bad = np.full(4, 0.5)
        assert psnr_db(ref, bad, peak=1.0) == pytest.approx(
            10.0 * math.log10(1.0 / 0.25))


class TestAllZeroVectors:
    def test_error_summary_on_all_zero_error(self):
        exact = np.array([3, -1, 0, 7, -8], dtype=np.int64)
        summary = error_summary(exact, exact.copy())
        assert summary == {"error_rate": 0.0, "mean_abs_error": 0.0,
                           "max_abs_error": 0.0}

    def test_error_summary_zero_signals(self):
        zeros = np.zeros(32, dtype=np.int64)
        summary = error_summary(zeros, zeros)
        assert summary["error_rate"] == 0.0
        assert summary["max_abs_error"] == 0.0

    def test_error_summary_single_flip(self):
        exact = np.zeros(4, dtype=np.int64)
        observed = np.array([0, 0, 2, 0], dtype=np.int64)
        summary = error_summary(exact, observed)
        assert summary["error_rate"] == pytest.approx(0.25)
        assert summary["mean_abs_error"] == pytest.approx(0.5)
        assert summary["max_abs_error"] == 2.0


class TestShapeMismatch:
    def test_mse_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mse(np.zeros(3), np.zeros(4))

    def test_error_rate_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            error_rate(np.zeros(3), np.zeros((3, 1)))

    def test_snr_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            snr_db(np.zeros(3), np.zeros(4))


def test_acceptability_threshold_boundary():
    assert is_acceptable_quality(ACCEPTABLE_PSNR_DB)
    assert not is_acceptable_quality(ACCEPTABLE_PSNR_DB - 1e-9)
    assert is_acceptable_quality(25.0, threshold_db=20.0)
