"""Tests for the parallel characterization engine and its instrumentation."""

import pytest

from repro.aging import worst_case
from repro.core import (ActualCaseSpec, CharacterizationCache, WorkerPool,
                        characterize, cache_enabled, instrument,
                        resolve_jobs)
from repro.core.parallel import JOBS_ENV, map_tasks
from repro.report import instrumentation_report_text
from repro.rtl import Adder, Multiplier


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        assert resolve_jobs(None) == 4

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-2)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError, match=JOBS_ENV):
            resolve_jobs(None)


def _double(x):
    return 2 * x


class TestMapTasks:
    def test_serial_order(self):
        assert map_tasks(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_parallel_preserves_order(self):
        assert map_tasks(_double, list(range(10)), jobs=3) == \
            [2 * i for i in range(10)]


class TestWorkerPool:
    def test_map_preserves_order_and_reuses_workers(self):
        with WorkerPool(jobs=2) as pool:
            assert pool.map(_double, [3, 1, 2]) == [6, 2, 4]
            executor = pool._executor
            assert executor is not None
            # A second map reuses the same executor (no respawn).
            assert pool.map(_double, list(range(5))) == \
                [2 * i for i in range(5)]
            assert pool._executor is executor
        assert pool._executor is None          # context exit reaps

    def test_lazy_executor_and_idempotent_shutdown(self):
        pool = WorkerPool(jobs=2)
        assert pool._executor is None           # nothing spawned yet
        assert "idle" in repr(pool)
        pool.shutdown()                         # safe before first use
        future = pool.submit(_double, 21)
        assert future.result(timeout=30) == 42
        assert "running" in repr(pool)
        pool.shutdown()
        pool.shutdown()

    def test_jobs_resolution(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert WorkerPool().jobs == 3
        assert WorkerPool(jobs=2).jobs == 2

    def test_map_tasks_routes_through_pool(self):
        with WorkerPool(jobs=2) as pool:
            assert map_tasks(_double, [4, 5], pool=pool) == [8, 10]
            assert pool._executor is not None

    def test_map_tasks_warns_on_conflicting_jobs(self):
        """An explicit jobs= that disagrees with the pool used to be
        silently ignored; now it warns (the pool still wins)."""
        with WorkerPool(jobs=2) as pool:
            with pytest.warns(RuntimeWarning, match="conflicts with pool"):
                assert map_tasks(_double, [4, 5], jobs=1, pool=pool) \
                    == [8, 10]
            # Matching or deferred job counts stay silent.
            import warnings
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert map_tasks(_double, [6], jobs=2, pool=pool) == [12]
                assert map_tasks(_double, [7], jobs=None, pool=pool) \
                    == [14]

    def test_characterize_with_pool_equals_serial(self, lib):
        """Acceptance: a persistent pool produces the same table as the
        serial path, across repeated sweeps on one pool."""
        scenarios = [worst_case(10)]
        serial = characterize(Adder(8), lib, scenarios=scenarios,
                              precisions=[8, 7, 6], effort="high",
                              jobs=1, cache=None)
        with WorkerPool(jobs=2) as pool:
            first = characterize(Adder(8), lib, scenarios=scenarios,
                                 precisions=[8, 7, 6], effort="high",
                                 cache=None, pool=pool)
            executor = pool._executor
            second = characterize(Adder(8), lib, scenarios=scenarios,
                                  precisions=[8, 7, 6], effort="high",
                                  cache=None, pool=pool)
            assert pool._executor is executor
        for table in (first, second):
            assert table.fresh_ps == serial.fresh_ps
            assert table.aged_ps == serial.aged_ps
            assert table.area_um2 == serial.area_um2
            assert table.gates == serial.gates


class TestParallelEquivalence:
    def test_mult16_jobs4_equals_serial(self, lib):
        """Acceptance: jobs=4 produces a ComponentCharacterization equal
        to the serial (jobs=1) result on the 16-bit multiplier."""
        component = Multiplier(16)
        scenarios = [worst_case(10)]
        serial = characterize(component, lib, scenarios=scenarios,
                              jobs=1, cache=None)
        parallel = characterize(component, lib, scenarios=scenarios,
                                jobs=4, cache=None)
        assert parallel.key == serial.key
        assert parallel.precisions == serial.precisions
        assert parallel.scenario_labels == serial.scenario_labels
        assert parallel.fresh_ps == serial.fresh_ps
        assert parallel.aged_ps == serial.aged_ps
        assert parallel.area_um2 == serial.area_um2
        assert parallel.leakage_nw == serial.leakage_nw
        assert parallel.gates == serial.gates
        assert parallel.depth == serial.depth

    def test_parallel_with_actual_case_and_cache(self, lib, rng, tmp_path):
        component = Adder(8)
        a, b = component.random_operands(64, rng=rng)
        scenarios = [worst_case(10), ActualCaseSpec(10, "nd", (a, b))]
        serial = characterize(component, lib, scenarios=scenarios,
                              precisions=[8, 7, 6], effort="high",
                              jobs=1, cache=None)
        cache = CharacterizationCache(tmp_path)
        parallel = characterize(component, lib, scenarios=scenarios,
                                precisions=[8, 7, 6], effort="high",
                                jobs=2, cache=cache)
        assert parallel.aged_ps == serial.aged_ps
        assert cache.stats.misses == 3
        # Parallel workers populated the shared cache for a serial rerun.
        warm = CharacterizationCache(tmp_path)
        rerun = characterize(component, lib, scenarios=scenarios,
                             precisions=[8, 7, 6], effort="high",
                             jobs=1, cache=warm)
        assert warm.stats.hits == 3
        assert rerun.aged_ps == serial.aged_ps


class TestInstrumentation:
    def test_stages_recorded(self, lib, rng):
        component = Adder(8)
        a, b = component.random_operands(64, rng=rng)
        with instrument.collect() as instr:
            characterize(component, lib,
                         scenarios=[worst_case(10),
                                    ActualCaseSpec(10, "nd", (a, b))],
                         precisions=[8, 7], effort="high", cache=None)
        summary = instr.summary()
        assert summary["stages"][instrument.STAGE_SYNTHESIZE]["calls"] == 2
        # Batched STA: one corner-grid pass per precision point.
        assert summary["stages"][instrument.STAGE_STA]["calls"] == 2
        assert summary["stages"][instrument.STAGE_STRESS]["calls"] == 2
        for entry in summary["stages"].values():
            assert entry["seconds"] > 0

    def test_scalar_sta_stages_per_corner(self, lib):
        with instrument.collect() as instr:
            characterize(Adder(8), lib,
                         scenarios=[worst_case(1), worst_case(10)],
                         precisions=[8, 7], effort="high", cache=None,
                         sta="scalar")
        summary = instr.summary()
        # Scalar STA: one pass per (precision, corner) grid point.
        assert summary["stages"][instrument.STAGE_STA]["calls"] == 4

    def test_cache_counters_surface(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        with instrument.collect() as instr:
            characterize(Adder(8), lib, scenarios=[worst_case(10)],
                         precisions=[8, 7], effort="high", cache=cache)
        assert instr.counter(instrument.COUNT_CACHE_MISSES) == 2
        with instrument.collect() as instr:
            characterize(Adder(8), lib, scenarios=[worst_case(10)],
                         precisions=[8, 7], effort="high",
                         cache=CharacterizationCache(tmp_path))
        assert instr.counter(instrument.COUNT_CACHE_HITS) == 2

    def test_worker_timings_merged_from_parallel_run(self, lib):
        with instrument.collect() as instr:
            characterize(Adder(8), lib, scenarios=[worst_case(10)],
                         precisions=[8, 7, 6], effort="high",
                         jobs=3, cache=None)
        summary = instr.summary()
        assert summary["stages"][instrument.STAGE_SYNTHESIZE]["calls"] == 3

    def test_merge_and_reset(self):
        a = instrument.Instrumentation()
        with a.stage("synthesize"):
            pass
        a.count("cache_hits", 2)
        b = instrument.Instrumentation()
        b.merge(a.summary())
        b.merge(a.summary())
        assert b.stage_calls("synthesize") == 2
        assert b.counter("cache_hits") == 4
        b.reset()
        assert b.summary() == {"stages": {}, "counters": {}}

    def test_report_text(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        with instrument.collect() as instr:
            characterize(Adder(8), lib, scenarios=[worst_case(10)],
                         precisions=[8, 7], effort="high", cache=cache)
        text = instrumentation_report_text(instr, cache.stats)
        assert "per-stage timing" in text
        assert "synthesize" in text
        assert "cache: 0 hits / 2 misses" in text


class TestCLI:
    def test_characterize_with_cache_jobs_timings(self, capsys, tmp_path):
        from repro.cli import main
        args = ["characterize", "--component", "adder", "--width", "8",
                "--years", "10", "--sweep-bits", "2", "--effort", "high",
                "--jobs", "1", "--cache-dir", str(tmp_path), "--timings"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "required precision" in out
        assert "per-stage timing" in out
        assert "misses" in out
        # Warm rerun reports hits instead of misses.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "3 hits / 0 misses" in out

    def test_flow_accepts_engine_flags(self, capsys, tmp_path):
        from repro.cli import main
        code = main(["flow", "--design", "fir", "--width", "10",
                     "--years", "10", "--effort", "high",
                     "--cache-dir", str(tmp_path), "--timings"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validated: True" in out
        assert "per-stage timing" in out
