"""Tests for the structural-hashing (CSE) synthesis pass."""

import numpy as np
import pytest

from repro.netlist import NetlistBuilder
from repro.rtl import Multiplier
from repro.sim import compile_netlist, evaluate
from repro.synth import dead_gate_elimination, structural_hashing


def test_duplicate_gates_merged(lib):
    builder = NetlistBuilder(name="dup")
    a, b = builder.inputs(2, "x")
    one = builder.and2(a, b)
    two = builder.and2(a, b)
    out = builder.or2(one, two)   # == one
    net = builder.outputs([out])
    structural_hashing(net, lib)
    dead_gate_elimination(net, lib)
    kinds = sorted(g.kind for g in net.gates)
    assert kinds == ["AND2", "OR2"] or kinds == ["AND2"]


def test_commutative_inputs_canonicalized(lib):
    builder = NetlistBuilder(name="comm")
    a, b = builder.inputs(2, "x")
    one = builder.xor2(a, b)
    two = builder.xor2(b, a)
    net = builder.outputs([one, two])
    structural_hashing(net, lib)
    assert net.num_gates == 1
    assert net.primary_outputs[0] == net.primary_outputs[1]


def test_noncommutative_order_respected(lib):
    builder = NetlistBuilder(name="mux")
    a, b, s = builder.inputs(3, "x")
    one = builder.mux2(a, b, s)
    two = builder.mux2(b, a, s)   # different function!
    net = builder.outputs([one, two])
    structural_hashing(net, lib)
    assert net.num_gates == 2


def test_function_preserved_on_real_component(lib, rng):
    component = Multiplier(5)
    net = component.build().copy()
    stim = rng.integers(0, 2, (128, 10)).astype(np.uint8)
    before = evaluate(compile_netlist(net, lib), stim)
    structural_hashing(net, lib)
    net.validate()
    after = evaluate(compile_netlist(net, lib), stim)
    assert np.array_equal(before, after)


def test_idempotent(lib):
    component = Multiplier(5)
    net = component.build().copy()
    structural_hashing(net, lib)
    count = net.num_gates
    structural_hashing(net, lib)
    assert net.num_gates == count


def test_recovers_area_on_generators(lib):
    # Arithmetic generators share propagate/generate terms.
    from repro.rtl import CarryLookaheadAdder
    net = CarryLookaheadAdder(16).build().copy()
    before = net.num_gates
    structural_hashing(net, lib)
    dead_gate_elimination(net, lib)
    assert net.num_gates < before


def test_chains_merge_transitively(lib):
    builder = NetlistBuilder(name="chain")
    a, b = builder.inputs(2, "x")
    x1 = builder.inv(builder.and2(a, b))
    x2 = builder.inv(builder.and2(a, b))
    net = builder.outputs([x1, x2])
    structural_hashing(net, lib)
    assert net.num_gates == 2  # one AND2, one INV
    assert net.primary_outputs[0] == net.primary_outputs[1]
