"""Additional edge-case tests for the codec, images and transforms."""

import numpy as np
import pytest

from repro.approx import GateLevelArithmetic, TimedComponentModel
from repro.media import TransformCodec, blockize, make_image
from repro.quality import psnr_db, ssim
from repro.rtl import FixedPointTransform8, Multiplier


class TestCodecEdges:
    def test_flat_image_roundtrip(self):
        flat = np.full((16, 16), 128, dtype=np.uint8)
        codec = TransformCodec()
        assert np.array_equal(codec.roundtrip(flat), flat)

    def test_extreme_images(self):
        codec = TransformCodec()
        for value in (0, 255):
            img = np.full((16, 16), value, dtype=np.uint8)
            rec = codec.roundtrip(img)
            assert np.abs(rec.astype(int) - value).max() <= 2

    def test_checkerboard_survives(self):
        y, x = np.mgrid[0:16, 0:16]
        img = (255 * ((x + y) % 2)).astype(np.uint8)
        rec = TransformCodec().roundtrip(img)
        assert psnr_db(img, rec) > 35.0

    def test_rectangular_image(self):
        img = make_image("akiyo", 64)[:32, :]
        rec = TransformCodec().roundtrip(img)
        assert rec.shape == (32, 64)
        assert psnr_db(img, rec) > 40.0

    def test_quant_bits_zero_is_near_lossless(self):
        img = make_image("mother", 32)
        codec = TransformCodec(quant_bits=0)
        assert psnr_db(img, codec.roundtrip(img)) > 50.0

    def test_encode_decode_split(self):
        img = make_image("suzie", 32)
        sender = TransformCodec()
        coeffs = sender.encode(img)
        receiver = TransformCodec()
        rec = receiver.decode(coeffs, shape=img.shape)
        assert np.array_equal(rec, sender.roundtrip(img))

    def test_dc_block_energy(self):
        img = np.full((8, 8), 200, dtype=np.uint8)
        coeffs = TransformCodec().encode(img)
        # All energy in the DC coefficient.
        assert abs(int(coeffs[0, 0, 0])) > 0
        assert np.abs(coeffs[0]).sum() == abs(int(coeffs[0, 0, 0]))


class TestTransformEdges:
    def test_impulse_response_is_coefficient_row(self):
        transform = FixedPointTransform8()
        impulse = np.zeros((1, 8), dtype=np.int64)
        impulse[0, 0] = transform.scale_in(np.array([100]))[0]
        out = transform.forward_1d(impulse)
        expected = transform.coeffs[:, 0] * 100 / (1 << transform.coeff_bits)
        got = out[0] / (1 << transform.data_frac_bits)
        assert np.abs(got - expected).max() < 2.0

    def test_linearity(self, rng):
        transform = FixedPointTransform8()
        a = transform.scale_in(rng.integers(-64, 64, (3, 8)))
        b = transform.scale_in(rng.integers(-64, 64, (3, 8)))
        both = transform.forward_1d(a + b)
        separate = transform.forward_1d(a) + transform.forward_1d(b)
        assert np.abs(both - separate).max() <= 8  # rounding only

    def test_quality_metrics_agree_on_codec_output(self):
        img = make_image("foreman", 32)
        clean = TransformCodec().roundtrip(img)
        assert psnr_db(img, clean) > 40.0
        assert ssim(img.astype(float), clean.astype(float)) > 0.97

    def test_aged_chain_destroys_ssim_too(self, lib):
        from repro.aging import worst_case
        from repro.rtl import WallaceMultiplier
        img = make_image("foreman", 32)
        model = TimedComponentModel(
            WallaceMultiplier(32, final_adder="ks"), lib,
            scenario=worst_case(10))
        wrecked = TransformCodec(decode_arithmetic=GateLevelArithmetic(
            mul_model=model)).roundtrip(img)
        assert ssim(img.astype(float), wrecked.astype(float)) < 0.5


class TestBlockizeEdges:
    def test_single_block(self):
        img = np.arange(64).reshape(8, 8)
        blocks, shape = blockize(img)
        assert blocks.shape == (1, 8, 8)
        assert np.array_equal(blocks[0], img)

    def test_dtype_preserved(self):
        img = np.zeros((8, 8), dtype=np.int64)
        blocks, __ = blockize(img)
        assert blocks.dtype == np.int64
