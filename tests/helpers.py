"""Shared test helpers."""

import numpy as np

from repro.sim import bits_to_int, compile_netlist, evaluate, int_to_bits
from repro.synth import synthesize_netlist


def run_netlist(component, lib, operands, netlist=None):
    """Evaluate a component's (synthesized) netlist on integer operands."""
    if netlist is None:
        netlist = synthesize_netlist(component, lib, effort="high")
    parts = [int_to_bits(np.asarray(vals), width)
             for vals, width in zip(operands, component.operand_widths)]
    bits = np.concatenate(parts, axis=1)
    out = evaluate(compile_netlist(netlist, lib), bits)
    return bits_to_int(out)
