"""Tests for the observability subsystem (repro.obs).

Covers the tentpole guarantees: span nesting and ambient propagation
(threads, asyncio, process-pool re-parenting), Chrome-trace / JSONL
export validity, associative metrics merging, cache-effectiveness
metrics, the run manifest, the logging hierarchy, and the
repro.core.instrument compatibility shim.
"""

import asyncio
import json
import logging
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import instrument
from repro.core.cache import CharacterizationCache
from repro.obs import logs as obs_logs
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

class TestSpanBasics:
    def test_noop_when_tracing_off(self):
        assert obs_trace.active_tracer() is None
        with obs_trace.span("orphan", key="value") as s:
            assert s is None
        assert obs_trace.current_span() is None

    def test_nesting_builds_tree(self):
        with obs_trace.capture() as tracer:
            with obs_trace.span("outer", component="adder") as outer:
                assert obs_trace.current_span() is outer
                with obs_trace.span("inner", precision=6) as inner:
                    assert obs_trace.current_span() is inner
            with obs_trace.span("sibling"):
                pass
        assert [r.name for r in tracer.roots] == ["outer", "sibling"]
        assert [c.name for c in tracer.roots[0].children] == ["inner"]
        assert tracer.roots[0].attrs == {"component": "adder"}
        assert tracer.roots[0].children[0].attrs == {"precision": 6}
        assert all(s.dur >= 0.0 for s, __d, __p in tracer.walk())

    def test_attrs_can_be_added_mid_span(self):
        with obs_trace.capture() as tracer:
            with obs_trace.span("point") as s:
                s.attrs["cache"] = "hit"
        assert tracer.roots[0].attrs["cache"] == "hit"

    def test_span_closed_even_on_exception(self):
        with obs_trace.capture() as tracer:
            with pytest.raises(RuntimeError):
                with obs_trace.span("doomed"):
                    raise RuntimeError("boom")
        assert [r.name for r in tracer.roots] == ["doomed"]
        assert obs_trace.current_span() is None

    def test_serialization_round_trip(self):
        with obs_trace.capture() as tracer:
            with obs_trace.span("root", width=8):
                with obs_trace.span("leaf", scenario="10y_worst"):
                    pass
        trees = tracer.to_dicts()
        json.dumps(trees)  # wire format must be plain JSON
        clone = obs_trace.Span.from_dict(trees[0])
        assert clone.name == "root"
        assert clone.children[0].attrs == {"scenario": "10y_worst"}
        assert clone.pid == os.getpid()
        assert clone.to_dict() == trees[0]

    def test_walk_reports_depth_and_parent(self):
        with obs_trace.capture() as tracer:
            with obs_trace.span("a"):
                with obs_trace.span("b"):
                    with obs_trace.span("c"):
                        pass
        depths = {s.name: (d, p.name if p else None)
                  for s, d, p in tracer.walk()}
        assert depths == {"a": (0, None), "b": (1, "a"), "c": (2, "b")}

    def test_totals_aggregates_by_name(self):
        with obs_trace.capture() as tracer:
            for __ in range(3):
                with obs_trace.span("stage"):
                    pass
        totals = tracer.totals()
        assert totals["stage"]["calls"] == 3
        assert totals["stage"]["seconds"] >= 0.0


class TestAmbientPropagation:
    def test_nested_capture_hides_outer(self):
        with obs_trace.capture() as outer:
            with obs_trace.span("parent"):
                with obs_trace.capture() as inner:
                    with obs_trace.span("worker-local"):
                        pass
        assert [r.name for r in inner.roots] == ["worker-local"]
        assert [r.name for r in outer.roots] == ["parent"]
        assert outer.roots[0].children == []

    def test_wrap_carries_context_into_threads(self):
        pool = ThreadPoolExecutor(max_workers=2)  # pre-dates capture()
        try:
            with obs_trace.capture() as tracer:
                with obs_trace.span("submit"):
                    def work(i):
                        with obs_trace.span("task", index=i):
                            return i
                    futures = [pool.submit(obs_trace.wrap(work), i)
                               for i in range(4)]
                    assert sorted(f.result() for f in futures) == [0, 1, 2, 3]
        finally:
            pool.shutdown()
        (root,) = tracer.roots
        assert root.name == "submit"
        assert sorted(c.attrs["index"] for c in root.children) == [0, 1, 2, 3]

    def test_asyncio_tasks_do_not_corrupt_each_other(self):
        async def task(name, tracer_holder):
            with obs_trace.capture() as tracer:
                tracer_holder[name] = tracer
                with obs_trace.span(name):
                    await asyncio.sleep(0)
                    with obs_trace.span(name + ".child"):
                        await asyncio.sleep(0)

        async def main():
            holder = {}
            await asyncio.gather(task("a", holder), task("b", holder))
            return holder

        holder = asyncio.run(main())
        for name in ("a", "b"):
            (root,) = holder[name].roots
            assert root.name == name
            assert [c.name for c in root.children] == [name + ".child"]

    def test_adopt_reparents_under_current_span(self):
        # Simulate the worker side: its own capture, shipped as dicts.
        with obs_trace.capture() as worker:
            with obs_trace.span("characterize.point", precision=6):
                with obs_trace.span("synthesize"):
                    pass
        wire = worker.to_dicts()
        wire = json.loads(json.dumps(wire))  # across the pickle boundary

        with obs_trace.capture() as parent:
            with obs_trace.span("characterize") as top:
                adopted = obs_trace.adopt(wire)
        assert len(adopted) == 1
        (root,) = parent.roots
        assert root is top
        assert [c.name for c in root.children] == ["characterize.point"]
        assert root.children[0].children[0].name == "synthesize"

    def test_adopt_is_noop_when_off(self):
        assert obs_trace.adopt([{"name": "x", "t0": 0.0}]) == []


class TestProcessPoolReparenting:
    def test_characterize_jobs2_reparents_worker_spans(self, lib):
        from repro.aging import worst_case
        from repro.core import characterize
        from repro.rtl import Adder

        with obs_trace.capture() as tracer, obs_metrics.scoped() as reg:
            characterize(Adder(6), lib, scenarios=[worst_case(10)],
                         precisions=[6, 5], effort="high", jobs=2)

        by_name = {}
        for s, __d, __p in tracer.walk():
            by_name.setdefault(s.name, []).append(s)
        assert len(by_name["characterize"]) == 1
        assert len(by_name["characterize.point"]) == 2
        # Worker spans landed inside this process's trace tree...
        top = by_name["characterize"][0]
        names = {s.name for s, __d, __p in top.walk()}
        assert "characterize.point" in names
        # Synthesis traces as the one-time base run or a sweep
        # derivation; aged corners as batched (or scalar) STA.
        assert names & {"synth.synthesize", "synth.sweep.derive"}
        assert names & {"sta.analyze", "sta.analyze_batch"}
        # ...and kept the worker's pid, distinct from the parent's.
        pids = {s.pid for s in by_name["characterize.point"]}
        assert pids and os.getpid() not in pids
        # Worker metrics merged into the submitting scope.
        assert reg.value(obs_metrics.SYNTH_RUNS) >= 2
        assert (reg.value(obs_metrics.STA_RUNS)
                + reg.value(obs_metrics.STA_BATCH_RUNS)) >= 2

    def test_characterize_serial_has_same_span_shape(self, lib):
        from repro.aging import worst_case
        from repro.core import characterize
        from repro.rtl import Adder

        with obs_trace.capture() as tracer:
            characterize(Adder(6), lib, scenarios=[worst_case(10)],
                         precisions=[6], effort="high", jobs=1)
        names = {s.name for s, __d, __p in tracer.walk()}
        assert {"characterize", "characterize.point"} <= names
        assert names & {"synth.synthesize", "synth.sweep.derive"}
        assert names & {"sta.analyze", "sta.analyze_batch"}


class TestExports:
    def _sample_tracer(self):
        with obs_trace.capture() as tracer:
            with obs_trace.span("run", command="flow"):
                with obs_trace.span("stage", precision=6):
                    pass
                with obs_trace.span("stage", precision=5):
                    pass
        return tracer

    def test_chrome_export_is_valid(self, tmp_path):
        path = tmp_path / "trace.json"
        self._sample_tracer().write_chrome(path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        timed = [e for e in events if e["ph"] == "X"]
        assert meta and all(e["name"] == "process_name" for e in meta)
        assert len(timed) == 3
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        assert all(e["ts"] >= 0 for e in timed)
        assert all(e["dur"] >= 0 for e in timed)
        assert {e["name"] for e in timed} == {"run", "stage"}
        assert {e["args"].get("precision") for e in timed} == {None, 6, 5}

    def test_chrome_export_labels_worker_processes(self, tmp_path):
        tracer = obs_trace.Tracer()
        tracer.add_root(obs_trace.Span("parent", t0=1.0, dur=2.0))
        tracer.adopt([{"name": "remote", "t0": 1.5, "dur": 0.5,
                       "pid": 99999, "tid": 1, "children": []}])
        events = tracer.chrome_events()
        labels = {e["pid"]: e["args"]["name"]
                  for e in events if e["ph"] == "M"}
        assert labels[99999] == "repro worker 99999"
        assert labels[os.getpid()] == "repro"

    def test_empty_tracer_exports_no_events(self):
        assert obs_trace.Tracer().chrome_events() == []

    def test_jsonl_export(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._sample_tracer().write_jsonl(path)
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == ["run", "stage", "stage"]
        assert [r["depth"] for r in rows] == [0, 1, 1]
        assert rows[1]["parent"] == "run"
        assert rows[0]["parent"] is None


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_round_trip(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("cache.hits").inc(3)
        reg.gauge("sim.vectors_per_sec").set(1.5e6)
        snap = reg.snapshot()
        assert snap["schema"] == obs_metrics.METRICS_SCHEMA
        assert snap["counters"] == {"cache.hits": 3}
        assert snap["gauges"] == {"sim.vectors_per_sec": 1.5e6}
        other = obs_metrics.MetricsRegistry().merge(snap).merge(snap)
        assert other.value("cache.hits") == 6
        assert other.value("sim.vectors_per_sec") == 1.5e6  # last write

    def test_get_or_create_rejects_kind_mismatch(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_histogram_observe(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.buckets == [1, 1, 1]
        assert h.count == 3 and h.sum == 55.5
        assert h.min == 0.5 and h.max == 50.0
        assert h.mean == pytest.approx(18.5)

    def test_histogram_merge_is_associative(self):
        def snap(values):
            h = obs_metrics.Histogram(boundaries=(1.0, 10.0, 100.0))
            for v in values:
                h.observe(v)
            return h.to_snapshot()

        a, b, c = snap([0.1, 2.0]), snap([20.0]), snap([200.0, 5.0])

        def fold(x, y):
            h = obs_metrics.Histogram(boundaries=(1.0, 10.0, 100.0))
            h.merge_snapshot(x)
            h.merge_snapshot(y)
            return h.to_snapshot()

        left = fold(fold(a, b), c)    # (a + b) + c
        right = fold(a, fold(b, c))   # a + (b + c)
        assert left == right
        assert left["count"] == 5
        assert left["buckets"] == [1, 2, 1, 1]

    def test_histogram_merge_rejects_boundary_mismatch(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 2.0))
        other = obs_metrics.Histogram(boundaries=(1.0, 3.0)).to_snapshot()
        with pytest.raises(ValueError, match="different boundaries"):
            h.merge_snapshot(other)

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            obs_metrics.Histogram(boundaries=(2.0, 1.0))

    def test_add_aggregate_credits_mean_bucket(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0))
        h.add_aggregate(4, 8.0)  # mean 2.0 -> middle bucket
        assert h.buckets == [0, 4, 0]
        assert h.count == 4 and h.sum == 8.0
        h.add_aggregate(0, 123.0)  # ignored
        assert h.count == 4

    def test_scoped_registry_isolation(self):
        obs_metrics.inc("test.outer")
        default_before = obs_metrics.registry().value("test.outer")
        with obs_metrics.scoped() as reg:
            obs_metrics.inc("test.inner", 2)
            assert obs_metrics.registry() is reg
            assert reg.value("test.inner") == 2
            assert reg.value("test.outer") == 0
        assert obs_metrics.registry().value("test.inner") == 0
        assert obs_metrics.registry().value("test.outer") == default_before

    def test_wrap_carries_scope_into_threads(self):
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            with obs_metrics.scoped() as reg:
                def work():
                    obs_metrics.inc("test.threaded")
                for f in [pool.submit(obs_metrics.wrap(work))
                          for __ in range(5)]:
                    f.result()
            assert reg.value("test.threaded") == 5
        finally:
            pool.shutdown()

    def test_snapshot_is_json_serializable(self):
        with obs_metrics.scoped() as reg:
            obs_metrics.inc(obs_metrics.CACHE_HITS)
            obs_metrics.set_gauge(obs_metrics.SIM_VECTORS_PER_SEC, 1e6)
            obs_metrics.observe(obs_metrics.SYNTH_DELAY_PS, 1234.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"][obs_metrics.CACHE_HITS] == 1
        assert snap["histograms"][obs_metrics.SYNTH_DELAY_PS]["count"] == 1


class TestHistogramQuantile:
    def test_empty_histogram_has_no_quantiles(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0))
        assert h.quantile(0.5) is None

    def test_out_of_range_rejected(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0))
        h.observe(5.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(-0.1)

    def test_single_observation_is_every_quantile(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0))
        h.observe(4.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(4.0)

    def test_extremes_clamp_to_observed_min_max(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0, 100.0))
        for value in (0.5, 3.0, 42.0, 250.0):
            h.observe(value)
        assert h.quantile(0.0) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(250.0)

    def test_interpolates_within_bucket(self):
        h = obs_metrics.Histogram(boundaries=(0.0, 10.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            h.observe(value)
        # All mass sits in (0, 10]; the median interpolates to mid-bucket.
        assert h.quantile(0.5) == pytest.approx(4.0, abs=1.01)
        assert 2.0 <= h.quantile(0.25) <= h.quantile(0.75) <= 8.0

    def test_quantile_after_merge(self):
        a = obs_metrics.Histogram(boundaries=(1.0, 10.0, 100.0))
        b = obs_metrics.Histogram(boundaries=(1.0, 10.0, 100.0))
        for value in (2.0, 3.0):
            a.observe(value)
        for value in (40.0, 50.0):
            b.observe(value)
        a.merge_snapshot(b.to_snapshot())
        assert a.count == 4
        assert a.quantile(0.0) == pytest.approx(2.0)
        assert a.quantile(1.0) == pytest.approx(50.0)
        # Median straddles the bucket boundary between the two sources.
        assert 2.0 <= a.quantile(0.5) <= 50.0

    def test_empty_extremes_are_none(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0))
        assert h.quantile(0.0) is None
        assert h.quantile(1.0) is None

    def test_single_overflow_bucket_observation(self):
        # One observation beyond the last boundary: every quantile is
        # that value, no interpolation against a nonexistent upper edge.
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0))
        h.observe(500.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(500.0)

    def test_bucket_only_wire_data_interpolates_on_edges(self):
        # Windowed / delta'd histograms carry buckets but no min/max
        # (the SLO evaluator's view). Quantiles must still work, falling
        # back to the bucket boundary edges.
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0, 100.0))
        h.buckets = [0, 4, 0, 0]
        h.count = 4
        assert h.min is None and h.max is None
        q = h.quantile(0.5)
        assert 1.0 <= q <= 10.0
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_bucket_only_overflow_clamps_to_last_boundary(self):
        h = obs_metrics.Histogram(boundaries=(1.0, 10.0))
        h.buckets = [0, 0, 3]
        h.count = 3
        # All mass in the unbounded overflow bucket with no max known:
        # quantiles degrade to the last finite boundary, never None/inf.
        for q in (0.0, 0.5, 1.0):
            value = h.quantile(q)
            assert value is not None
            assert value >= 10.0
            assert value != float("inf")


class TestPrometheusText:
    # Prometheus text exposition format 0.0.4, simplified to what the
    # exporter can emit (no label commas/escapes beyond le="...").
    SAMPLE = r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? ' \
             r'(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$'

    def _render(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter(obs_metrics.SERVE_REQUESTS).inc(7)
        reg.gauge(obs_metrics.SERVE_QUEUE_DEPTH).set(2.0)
        hist = reg.histogram(obs_metrics.SERVE_LATENCY_MS)
        for value in (0.5, 3.0, 250.0):
            hist.observe(value)
        return obs_metrics.prometheus_text(reg.snapshot())

    def test_every_line_matches_the_grammar(self):
        import re
        text = self._render()
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                assert line == "" or re.match(
                    r"^# (HELP|TYPE) repro_[a-zA-Z0-9_]+", line), line
                continue
            assert re.match(self.SAMPLE, line), line

    def test_counter_gauge_histogram_conventions(self):
        text = self._render()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 7" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_latency_ms histogram" in text
        assert 'repro_serve_latency_ms_bucket{le="+Inf"} 3' in text
        assert "repro_serve_latency_ms_count 3" in text
        assert "repro_serve_latency_ms_sum 253.5" in text

    def test_buckets_are_cumulative_and_ordered(self):
        import re
        text = self._render()
        counts = [int(m.group(2)) for m in re.finditer(
            r'repro_serve_latency_ms_bucket\{le="([^"]+)"\} (\d+)',
            text)]
        assert counts == sorted(counts)
        assert counts[-1] == 3  # +Inf bucket holds everything


class TestOutOfOrderMerge:
    def test_worker_snapshots_merge_order_independent(self):
        """Worker metric snapshots arriving out of order fold to the
        same registry state — counters, gauge last-write aside,
        histograms bucket-for-bucket."""
        def worker_snapshot(values):
            reg = obs_metrics.MetricsRegistry()
            reg.counter("serve.computes").inc(len(values))
            hist = reg.histogram(obs_metrics.SERVE_LATENCY_MS)
            for value in values:
                hist.observe(value)
            return reg.snapshot()

        snaps = [worker_snapshot([1.0, 2.0]),
                 worker_snapshot([300.0]),
                 worker_snapshot([0.1, 40.0, 5.0])]

        forward = obs_metrics.MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        backward = obs_metrics.MetricsRegistry()
        for snap in reversed(snaps):
            backward.merge(snap)

        fwd, bwd = forward.snapshot(), backward.snapshot()
        assert fwd["counters"] == bwd["counters"]
        assert fwd["histograms"] == bwd["histograms"]
        hist = forward.get(obs_metrics.SERVE_LATENCY_MS)
        assert hist.count == 6
        assert hist.quantile(1.0) == pytest.approx(300.0)


# ---------------------------------------------------------------------------
# cache-effectiveness metrics
# ---------------------------------------------------------------------------

class TestCacheMetrics:
    METRICS = {"delay_ps": 100.0, "area_um2": 1.0, "leakage_nw": 2.0,
               "gates": 10, "depth": 4}
    KEY = "ab" + "0" * 62

    def test_cold_load_then_store_then_hit(self, tmp_path):
        cache = CharacterizationCache(tmp_path)
        with obs_metrics.scoped() as reg:
            assert cache.load(self.KEY) is None
            cache.store(self.KEY, self.METRICS,
                        {"fp1": {"label": "10y_worst", "delay_ps": 110.0}})
            assert cache.load(self.KEY) is not None
        assert reg.value(obs_metrics.CACHE_MISSES) == 1
        assert reg.value(obs_metrics.CACHE_STORES) == 1
        assert reg.value(obs_metrics.CACHE_HITS) == 1
        assert reg.value(obs_metrics.CACHE_BYTES_WRITTEN) > 0
        # store() populates the in-memory tier, so the warm hit above is
        # served without touching disk; a fresh instance must read it.
        assert reg.value(obs_metrics.CACHE_MEM_HITS) == 1
        assert reg.value(obs_metrics.CACHE_BYTES_READ) == 0
        with obs_metrics.scoped() as cold:
            assert CharacterizationCache(tmp_path).load(self.KEY) is not None
        assert cold.value(obs_metrics.CACHE_BYTES_READ) > 0
        assert cold.value(obs_metrics.CACHE_MEM_HITS) == 0
        # Legacy CacheStats stayed in sync (the COUNT_CACHE_* aliases).
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_peek_emits_no_metrics(self, tmp_path):
        cache = CharacterizationCache(tmp_path)
        cache.store(self.KEY, self.METRICS, {})
        with obs_metrics.scoped() as reg:
            assert cache.peek(self.KEY) is not None
        assert reg.value(obs_metrics.CACHE_HITS) == 0
        assert reg.value(obs_metrics.CACHE_BYTES_READ) == 0

    def test_corrupt_entry_counts_recovery(self, tmp_path):
        cache = CharacterizationCache(tmp_path, mem_entries=0)
        cache.store(self.KEY, self.METRICS, {})
        path = cache._path(self.KEY)
        with open(path, "w") as handle:
            handle.write("{not json")
        with obs_metrics.scoped() as reg:
            assert cache.load(self.KEY) is None
        assert reg.value(obs_metrics.CACHE_ERRORS) == 1
        assert reg.value(obs_metrics.CACHE_MISSES) == 1
        assert not os.path.exists(path)


# ---------------------------------------------------------------------------
# run manifest
# ---------------------------------------------------------------------------

class TestManifest:
    def test_build_and_write(self, tmp_path, lib):
        manifest = obs_manifest.build_manifest(
            "repro-aging flow",
            config={"design": "fir", "width": 10},
            library=lib,
            stages={"synthesize": {"calls": 3, "seconds": 0.5}},
            metrics={"schema": 1, "counters": {"cache.hits": 2},
                     "gauges": {}, "histograms": {}},
            duration_s=1.25,
            extra={"note": "test"})
        assert manifest["schema"] == obs_manifest.MANIFEST_SCHEMA
        assert manifest["command"] == "repro-aging flow"
        assert manifest["config"] == {"design": "fir", "width": 10}
        assert len(manifest["fingerprints"]["config"]) == 64
        assert manifest["library"]["name"] == lib.name
        assert len(manifest["library"]["fingerprint"]) == 64
        assert manifest["stages"]["synthesize"]["calls"] == 3
        assert manifest["duration_s"] == 1.25
        assert manifest["extra"] == {"note": "test"}
        assert manifest["host"]["pid"] == os.getpid()

        path = obs_manifest.write_manifest(tmp_path / "run.json", manifest)
        assert json.loads(open(path).read()) == json.loads(
            json.dumps(manifest))

    def test_config_fingerprint_is_stable(self):
        a = obs_manifest.build_manifest("x", config={"b": 2, "a": 1})
        b = obs_manifest.build_manifest("x", config={"a": 1, "b": 2})
        assert (a["fingerprints"]["config"]
                == b["fingerprints"]["config"])

    def test_peak_rss_positive_on_linux(self):
        rss = obs_manifest.peak_rss_bytes()
        assert rss is None or rss > 1024 * 1024

    def test_default_manifest_path(self):
        assert (obs_manifest.default_manifest_path(None, "out/trace.json")
                == os.path.join("out", "trace.manifest.json"))
        assert (obs_manifest.default_manifest_path("m.json", "t.json")
                == "m.manifest.json")
        assert obs_manifest.default_manifest_path(None, None) is None


# ---------------------------------------------------------------------------
# logging hierarchy
# ---------------------------------------------------------------------------

class TestLogs:
    def test_loggers_live_under_repro_root(self):
        assert obs_logs.get_logger().name == "repro"
        assert obs_logs.get_logger("core.cache").name == "repro.core.cache"
        assert (obs_logs.get_logger("sim.activity").parent.name
                .startswith("repro"))

    def test_configure_is_idempotent(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            obs_logs.configure("debug")
            obs_logs.configure("info")
            ours = [h for h in root.handlers if h not in before]
            assert len(ours) == 1
            assert root.level == logging.INFO
        finally:
            for h in [h for h in root.handlers if h not in before]:
                root.removeHandler(h)

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            obs_logs.configure("chatty")


# ---------------------------------------------------------------------------
# repro.core.instrument compatibility shim
# ---------------------------------------------------------------------------

class TestInstrumentShim:
    def test_summary_wire_format_unchanged(self):
        instr = instrument.Instrumentation()
        with instr.stage(instrument.STAGE_SYNTHESIZE):
            pass
        instr.count(instrument.COUNT_CACHE_HITS, 2)
        summary = instr.summary()
        assert set(summary) == {"stages", "counters"}
        stage = summary["stages"][instrument.STAGE_SYNTHESIZE]
        assert stage["calls"] == 1 and stage["seconds"] >= 0.0
        assert summary["counters"] == {instrument.COUNT_CACHE_HITS: 2}
        json.dumps(summary)

    def test_stage_also_records_trace_span(self):
        instr = instrument.Instrumentation()
        with obs_trace.capture() as tracer:
            with instr.stage("sta"):
                pass
        assert [r.name for r in tracer.roots] == ["sta"]
        assert instr.stage_calls("sta") == 1

    def test_collect_isolated_across_threads(self):
        # The old module-level _STACK list interleaved pushes/pops across
        # threads; the contextvars stack must not.
        def work(i):
            with instrument.collect() as instr:
                assert instrument.current() is instr
                instr.count("worker", i)
                return instrument.current().counter("worker")

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = sorted(pool.map(work, range(8)))
        assert results == list(range(8))
        assert instrument.current().counter("worker") == 0

    def test_counter_aliases_point_at_canonical_names(self):
        assert (instrument.COUNTER_ALIASES[instrument.COUNT_CACHE_HITS]
                == obs_metrics.CACHE_HITS)
        assert (instrument.COUNTER_ALIASES[
                instrument.COUNT_NETLIST_MEMO_HITS]
                == obs_metrics.NETLIST_MEMO_HITS)
