"""Shared fixtures and hypothesis profiles for the test suite.

Synthesis and characterization are deterministic, so expensive artifacts
(the cell library, synthesized small components) are session-scoped and
shared across test modules.

Hypothesis settings are centralized here instead of per-file
``@settings`` decorators: the ``quick`` profile (the default) keeps
tier-1 fast, the ``ci`` profile digs deeper with generous deadlines.
Select with ``REPRO_HYPOTHESIS_PROFILE=ci`` (or any registered name).
"""

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.cells import nangate45
from repro.rtl import Adder, Multiplier, MultiplyAccumulate
from repro.synth import synthesize_netlist

pytest_plugins = ("repro.verify.pytest_plugin",)

# Netlist-synthesizing property tests are slow per example; both
# profiles disable the wall-clock deadline (synthesis latency varies
# far more than the logic under test) and differ only in depth.
settings.register_profile("quick", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=100, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "quick"))


@pytest.fixture(scope="session")
def lib():
    """The bundled 45 nm-like cell library."""
    return nangate45()


@pytest.fixture(scope="session")
def adder8(lib):
    """Synthesized 8-bit carry-lookahead adder."""
    return synthesize_netlist(Adder(8), lib, effort="high")


@pytest.fixture(scope="session")
def adder8_component():
    return Adder(8)


@pytest.fixture(scope="session")
def mult6(lib):
    """Synthesized 6-bit Wallace multiplier."""
    return synthesize_netlist(Multiplier(6), lib, effort="high")


@pytest.fixture(scope="session")
def mult6_component():
    return Multiplier(6)


@pytest.fixture(scope="session")
def mac4(lib):
    """Synthesized 4-bit fused MAC."""
    return synthesize_netlist(MultiplyAccumulate(4), lib, effort="high")


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(20170618)
