"""Property tests for the sample-axis Monte Carlo engine.

The vectorized sampled path must collapse onto the deterministic
engine whenever variation vanishes: at ``sigma = 0`` a one-sample
analysis is **bit-identical** (``==``, no epsilon) to
``analyze_batch`` on arbitrary netlists — random DAGs from the fuzz
generator plus every committed regression entry in ``tests/corpus/``.
With nonzero sigma the vectorized tensor path must match the scalar
per-(gate, corner, sample) oracle to float tolerance on the same
netlists.
"""

import os

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cells import default_library
from repro.core.specs import parse_scenario
from repro.mc import VariationModel, analyze_mc, analyze_mc_reference
from repro.sta.engine import analyze_batch
from repro.verify import load_corpus, random_netlist
from repro.verify.pytest_plugin import CORPUS_DIRNAME

LIB = default_library()
CORPUS_DIR = os.path.join(os.path.dirname(__file__), CORPUS_DIRNAME)
_CORPUS = load_corpus(CORPUS_DIR)

CORNERS = tuple(parse_scenario(s) for s in ("fresh", "worst1y",
                                            "worst10y"))


def _assert_zero_sigma_bit_identical(netlist, seed):
    batch = analyze_batch(netlist, LIB, CORNERS)
    rep = analyze_mc(netlist, LIB, CORNERS,
                     VariationModel(sigma_mv=0.0, seed=seed), samples=1,
                     keep_arrivals=True)
    assert (rep.critical_path_ps == batch.critical_path_ps[:, None]).all()
    assert (rep.arrivals == batch.arrivals[:, :, None]).all()


def _assert_matches_scalar_oracle(netlist, seed, samples):
    variation = VariationModel(sigma_mv=30.0, seed=seed)
    fast = analyze_mc(netlist, LIB, CORNERS, variation, samples=samples)
    slow = analyze_mc_reference(netlist, LIB, CORNERS, variation,
                                samples=samples)
    np.testing.assert_allclose(fast.critical_path_ps, slow, rtol=1e-12,
                               atol=0.0)


@given(seed=st.integers(0, 2**32 - 1))
def test_zero_sigma_identity_on_random_netlists(seed):
    """sigma = 0, samples = 1 == analyze_batch exactly, any DAG."""
    rng = np.random.default_rng(seed)
    netlist = random_netlist(rng, n_inputs=4, max_gates=30, n_outputs=3)
    _assert_zero_sigma_bit_identical(netlist, seed)


@pytest.mark.verify
@pytest.mark.skipif(not _CORPUS, reason="no fuzz corpus committed")
@given(data=st.data())
def test_zero_sigma_identity_on_corpus(data):
    """Same bit-identity over every committed regression netlist."""
    __, netlist = data.draw(st.sampled_from(_CORPUS))
    seed = data.draw(st.integers(0, 2**32 - 1))
    _assert_zero_sigma_bit_identical(netlist, seed)


@given(seed=st.integers(0, 2**32 - 1),
       samples=st.sampled_from([1, 3, 5]))
def test_vectorized_matches_oracle_on_random_netlists(seed, samples):
    """Tensor path == scalar triple-loop oracle to 1e-12, any DAG."""
    rng = np.random.default_rng(seed)
    netlist = random_netlist(rng, n_inputs=3, max_gates=16, n_outputs=2)
    _assert_matches_scalar_oracle(netlist, seed, samples)
