"""Tests for logic synthesis: optimization passes and the entry point."""

import numpy as np
import pytest

from repro.netlist import CONST0, CONST1, NetlistBuilder
from repro.rtl import Adder, Multiplier
from repro.sim import compile_netlist, evaluate
from repro.sta import critical_path_delay
from repro.synth import (EFFORTS, constant_propagation,
                         dead_gate_elimination, optimize,
                         remove_inverter_pairs, synthesize,
                         synthesize_netlist)


def random_netlist(rng, n_inputs=6, n_gates=40, tie_consts=True):
    """Random DAG of 2-input gates, some inputs tied to constants."""
    builder = NetlistBuilder(name="rand")
    pool = list(builder.inputs(n_inputs, "x"))
    if tie_consts:
        pool += [CONST0, CONST1]
    kinds = ["and2", "or2", "xor2", "nand2", "nor2", "xnor2", "inv"]
    for __ in range(n_gates):
        kind = kinds[rng.integers(len(kinds))]
        if kind == "inv":
            out = builder.inv(pool[rng.integers(len(pool))])
        else:
            a = pool[rng.integers(len(pool))]
            b = pool[rng.integers(len(pool))]
            out = getattr(builder, kind)(a, b)
        pool.append(out)
    outputs = [pool[-(i + 1)] for i in range(4)]
    return builder.outputs(outputs)


def outputs_of(net, lib, stim):
    return evaluate(compile_netlist(net, lib), stim)


class TestConstantPropagation:
    def test_preserves_function(self, lib, rng):
        for trial in range(5):
            net = random_netlist(np.random.default_rng(trial))
            stim = rng.integers(0, 2, (64, 6)).astype(np.uint8)
            before = outputs_of(net, lib, stim)
            optimized = constant_propagation(net.copy(), lib)
            optimized.validate()
            assert np.array_equal(outputs_of(optimized, lib, stim), before)

    def test_folds_constant_cone(self, lib):
        builder = NetlistBuilder(name="c")
        a = builder.inputs(1, "a")[0]
        dead = builder.and2(CONST0, a)       # always 0
        out = builder.or2(dead, a)           # == a
        net = builder.outputs([out])
        optimized = optimize(net, lib)
        assert optimized.num_gates == 0
        assert optimized.primary_outputs == [a]

    def test_xor_with_const1_becomes_inverter(self, lib):
        builder = NetlistBuilder(name="x1")
        a = builder.inputs(1, "a")[0]
        out = builder.xor2(a, CONST1)
        net = builder.outputs([out])
        optimized = constant_propagation(net, lib)
        assert optimized.num_gates == 1
        assert optimized.gates[0].kind == "INV"

    def test_same_input_simplifications(self, lib):
        builder = NetlistBuilder(name="same")
        a = builder.inputs(1, "a")[0]
        net = builder.outputs([builder.xor2(a, a), builder.and2(a, a)])
        optimized = constant_propagation(net, lib)
        assert optimized.primary_outputs == [CONST0, a]

    def test_mux_select_folding(self, lib):
        builder = NetlistBuilder(name="mux")
        a, b = builder.inputs(2, "x")
        out0 = builder.mux2(a, b, CONST0)
        out1 = builder.mux2(a, b, CONST1)
        net = builder.outputs([out0, out1])
        optimized = constant_propagation(net, lib)
        assert optimized.primary_outputs == [a, b]

    def test_aoi_oai_folding(self, lib, rng):
        builder = NetlistBuilder(name="aoi")
        a, b = builder.inputs(2, "x")
        outs = [builder.aoi21(a, b, CONST0),   # -> NAND2(a, b)
                builder.aoi21(a, b, CONST1),   # -> 0
                builder.oai21(a, b, CONST1),   # -> NOR2(a, b)
                builder.oai21(a, b, CONST0)]   # -> 1
        net = builder.outputs(outs)
        stim = rng.integers(0, 2, (16, 2)).astype(np.uint8)
        before = outputs_of(net, lib, stim)
        optimized = constant_propagation(net, lib)
        assert np.array_equal(outputs_of(optimized, lib, stim), before)
        kinds = {g.kind for g in optimized.gates}
        assert kinds <= {"NAND2", "NOR2"}


class TestCleanupPasses:
    def test_inverter_pairs_removed(self, lib):
        builder = NetlistBuilder(name="ii")
        a = builder.inputs(1, "a")[0]
        out = builder.inv(builder.inv(a))
        net = builder.outputs([out])
        cleaned = remove_inverter_pairs(net, lib)
        dead_gate_elimination(cleaned, lib)
        assert cleaned.num_gates == 0
        assert cleaned.primary_outputs == [a]

    def test_buffers_removed(self, lib):
        builder = NetlistBuilder(name="buf")
        a = builder.inputs(1, "a")[0]
        out = builder.buf(builder.buf(a))
        net = builder.outputs([out])
        cleaned = remove_inverter_pairs(net, lib)
        assert cleaned.primary_outputs == [a]

    def test_dead_gates_eliminated(self, lib):
        builder = NetlistBuilder(name="dead")
        a, b = builder.inputs(2, "x")
        keep = builder.and2(a, b)
        builder.xor2(a, b)  # drives nothing
        net = builder.outputs([keep])
        cleaned = dead_gate_elimination(net, lib)
        assert cleaned.num_gates == 1

    def test_passes_preserve_function(self, lib, rng):
        for trial in range(5):
            net = random_netlist(np.random.default_rng(100 + trial))
            stim = rng.integers(0, 2, (64, 6)).astype(np.uint8)
            before = outputs_of(net, lib, stim)
            cleaned = optimize(net.copy(), lib)
            cleaned.validate()
            assert np.array_equal(outputs_of(cleaned, lib, stim), before)


class TestSynthesize:
    def test_all_efforts_preserve_function(self, lib, rng):
        component = Adder(6)
        a, b = component.random_operands(200, rng=rng,
                                         distribution="uniform")
        golden = component.exact(a, b)
        from helpers import run_netlist
        for effort in EFFORTS:
            net = synthesize_netlist(component, lib, effort=effort)
            assert np.array_equal(
                run_netlist(component, lib, (a, b), netlist=net), golden)

    def test_result_metadata(self, lib):
        result = synthesize(Adder(8), lib, effort="high")
        assert result.final_gates <= result.source_gates
        assert result.delay_ps > 0
        assert result.area_um2 > 0
        assert result.netlist.validate()

    def test_unknown_effort_rejected(self, lib):
        with pytest.raises(ValueError, match="effort"):
            synthesize(Adder(4), lib, effort="mega")

    def test_truncation_shrinks_after_synthesis(self, lib):
        sizes = []
        for precision in (8, 6, 4, 2):
            net = synthesize_netlist(Adder(8, precision=precision), lib,
                                     effort="high")
            sizes.append(net.num_gates)
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] < sizes[0]

    def test_ultra_is_at_least_as_fast_as_high(self, lib):
        high = synthesize(Multiplier(8), lib, effort="high")
        ultra = synthesize(Multiplier(8), lib, effort="ultra")
        assert ultra.delay_ps <= high.delay_ps

    def test_netlist_input_not_mutated(self, lib):
        source = Adder(8).build()
        gates_before = source.num_gates
        synthesize(source, lib, effort="high")
        assert source.num_gates == gates_before

    def test_interface_preserved(self, lib):
        component = Adder(8, precision=4)
        net = synthesize_netlist(component, lib, effort="high")
        assert len(net.primary_inputs) == 16
        assert len(net.primary_outputs) == 8
