"""Tests for the staged-datapath (pipeline) simulator."""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.approx import TimedComponentModel
from repro.rtl import Adder, Multiplier, WallaceMultiplier
from repro.sim import TimedPipeline


def mul_add_pipeline(lib, scenario=None, coeff=37, offset=5,
                     mult_cls=Multiplier):
    """Two-stage datapath: x -> x*coeff -> +offset."""
    mul = TimedComponentModel(mult_cls(16), lib, scenario=scenario)
    add = TimedComponentModel(Adder(32), lib, scenario=scenario)
    stages = [
        ("mult", mul, lambda d: (np.full_like(d, coeff), d)),
        ("acc", add, lambda d: (d, np.full_like(d, offset))),
    ]
    return TimedPipeline(stages)


class TestConstruction:
    def test_requires_stages(self):
        with pytest.raises(ValueError):
            TimedPipeline([])

    def test_shared_clock_is_slowest_stage(self, lib):
        pipe = mul_add_pipeline(lib)
        clocks = {model.t_clock_ps
                  for __, model, __f in pipe._stages}
        assert clocks == {pipe.t_clock_ps}
        assert pipe.t_clock_ps == pytest.approx(
            max(model.fresh_delay_ps for __, model, __f in pipe._stages))

    def test_explicit_clock_applied(self, lib):
        mul = TimedComponentModel(Multiplier(8), lib)
        pipe = TimedPipeline([("m", mul, lambda d: (d, d))],
                             t_clock_ps=999.0)
        assert mul.simulator.t_clock_ps == 999.0

    def test_latency(self, lib):
        assert mul_add_pipeline(lib).latency_cycles == 2


class TestExecution:
    def test_fresh_pipeline_is_exact_and_clean(self, lib, rng):
        pipe = mul_add_pipeline(lib)
        x = rng.integers(-1000, 1000, 300)
        run = pipe.run(x)
        assert run.clean
        assert np.array_equal(run.outputs, x * 37 + 5)
        assert all(s.violation_rate == 0.0 for s in run.stages)
        assert [s.name for s in run.stages] == ["mult", "acc"]

    def test_stage_cycle_counts(self, lib, rng):
        pipe = mul_add_pipeline(lib)
        run = pipe.run(rng.integers(-100, 100, 128))
        assert all(s.cycles == 128 for s in run.stages)

    def test_aged_pipeline_localizes_errors(self, lib, rng):
        # At the shared (multiplier) clock, the aged adder keeps huge
        # slack: violations must be attributed to the multiplier stage.
        pipe = mul_add_pipeline(lib, scenario=worst_case(10),
                                mult_cls=lambda w: WallaceMultiplier(
                                    w, final_adder="ks"))
        x = rng.integers(-(1 << 14), 1 << 14, 4000)
        run = pipe.run(x)
        worst = run.worst_stage()
        adder_stage = [s for s in run.stages if s.name == "acc"][0]
        assert adder_stage.violation_rate == 0.0
        if not run.clean:
            assert worst.name == "mult"
            assert worst.corruption_rate > 0.0

    def test_multidimensional_input_flattened(self, lib, rng):
        pipe = mul_add_pipeline(lib)
        x = rng.integers(-50, 50, (4, 8))
        run = pipe.run(x)
        assert run.outputs.shape == (32,)
        assert np.array_equal(run.outputs, x.reshape(-1) * 37 + 5)
