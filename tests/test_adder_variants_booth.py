"""Functional tests for carry-select/skip adders and Booth multiplier."""

import numpy as np
import pytest

from repro.rtl import (BoothMultiplier, CarrySelectAdder, CarrySkipAdder,
                       Multiplier)
from repro.synth import synthesize_netlist

from helpers import run_netlist

VARIANT_ADDERS = [CarrySelectAdder, CarrySkipAdder]


class TestVariantAdders:
    @pytest.mark.parametrize("cls", VARIANT_ADDERS)
    def test_exhaustive_4bit(self, lib, cls):
        component = cls(4)
        values = np.arange(-8, 8, dtype=np.int64)
        a, b = np.meshgrid(values, values)
        a, b = a.ravel(), b.ravel()
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.exact(a, b))

    @pytest.mark.parametrize("cls", VARIANT_ADDERS)
    @pytest.mark.parametrize("width", [5, 8, 16])
    def test_random_widths(self, lib, cls, width, rng):
        component = cls(width)
        a, b = component.random_operands(300, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.exact(a, b))

    @pytest.mark.parametrize("cls", VARIANT_ADDERS)
    def test_group_parameter(self, lib, cls, rng):
        for group in (2, 3, 8):
            component = cls(12, group=group)
            a, b = component.random_operands(200, rng=rng,
                                             distribution="uniform")
            assert np.array_equal(run_netlist(component, lib, (a, b)),
                                  component.exact(a, b))

    @pytest.mark.parametrize("cls", VARIANT_ADDERS)
    def test_tiny_group_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(8, group=1)

    @pytest.mark.parametrize("cls", VARIANT_ADDERS)
    def test_truncated_matches_approximate(self, lib, cls, rng):
        component = cls(8, precision=5)
        a, b = component.random_operands(300, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.approximate(a, b))

    @pytest.mark.parametrize("cls", VARIANT_ADDERS)
    def test_with_precision_keeps_group(self, cls):
        base = cls(16, group=8)
        cut = base.with_precision(10)
        assert cut.group == 8
        assert cut.precision == 10

    def test_select_faster_than_skip_under_topological_sta(self, lib):
        # Topological STA cannot credit the skip adder's false-path
        # bypass, so carry-select dominates in this model.
        from repro.sta import critical_path_delay
        sel = synthesize_netlist(CarrySelectAdder(16), lib, effort="high")
        skip = synthesize_netlist(CarrySkipAdder(16), lib, effort="high")
        assert critical_path_delay(sel, lib) < \
            critical_path_delay(skip, lib)


class TestBoothMultiplier:
    @pytest.mark.parametrize("width", [3, 4, 5])
    def test_exhaustive_small(self, lib, width):
        component = BoothMultiplier(width)
        values = np.arange(-(1 << (width - 1)), 1 << (width - 1),
                           dtype=np.int64)
        a, b = np.meshgrid(values, values)
        a, b = a.ravel(), b.ravel()
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.exact(a, b))

    @pytest.mark.parametrize("width", [6, 9, 12])
    def test_random_widths(self, lib, width, rng):
        component = BoothMultiplier(width)
        a, b = component.random_operands(200, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.exact(a, b))

    def test_extreme_values(self, lib):
        component = BoothMultiplier(8)
        corner = np.array([-128, -128, 127, 127, 0, -1], dtype=np.int64)
        other = np.array([-128, 127, 127, -128, 0, -1], dtype=np.int64)
        assert np.array_equal(run_netlist(component, lib, (corner, other)),
                              component.exact(corner, other))

    def test_agrees_with_wallace(self, lib, rng):
        booth = BoothMultiplier(6)
        wallace = Multiplier(6)
        a, b = booth.random_operands(300, rng=rng,
                                     distribution="uniform")
        assert np.array_equal(run_netlist(booth, lib, (a, b)),
                              run_netlist(wallace, lib, (a, b)))

    def test_fewer_partial_product_rows_than_array(self, lib):
        # Booth's raison d'etre: about half the partial products.
        from repro.netlist import NetlistBuilder
        from repro.rtl.booth import booth_columns
        from repro.rtl.multiplier import baugh_wooley_columns
        for make, expected_max in ((booth_columns, 8 / 2 + 2),
                                   (baugh_wooley_columns, 8 + 2)):
            builder = NetlistBuilder()
            a = builder.inputs(8, "a")
            b = builder.inputs(8, "b")
            cols = make(builder, a, b)
            height = max(len(col) for col in cols)
            assert height <= expected_max, make.__name__

    def test_truncation_consistency(self, lib, rng):
        component = BoothMultiplier(8, precision=5)
        a, b = component.random_operands(300, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.approximate(a, b))

    def test_final_adder_variants(self, lib, rng):
        component = BoothMultiplier(6, final_adder="ks")
        a, b = component.random_operands(200, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.exact(a, b))
        with pytest.raises(ValueError):
            BoothMultiplier(6, final_adder="rca")

    def test_with_precision_keeps_final_adder(self):
        cut = BoothMultiplier(8, final_adder="ks").with_precision(6)
        assert cut.final_adder == "ks"
