"""Tests for truncation semantics and the arithmetic models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.approx import (ComponentArithmetic, ExactArithmetic,
                          RecordingArithmetic, TruncatedArithmetic,
                          product_error_bound, sum_error_bound,
                          truncate_lsbs, truncation_error_bound)
from repro.rtl import Adder, Multiplier


class TestTruncateLsbs:
    def test_zero_drop_is_identity(self):
        arr = np.array([1, -5, 7])
        assert truncate_lsbs(arr, 0) is arr

    def test_positive_values(self):
        arr = np.array([0b1111, 0b1010])
        assert truncate_lsbs(arr, 2).tolist() == [0b1100, 0b1000]

    def test_negative_values_round_toward_minus_inf(self):
        assert truncate_lsbs(-5, 2) == -8
        assert truncate_lsbs(np.array([-1]), 3)[0] == -8

    def test_python_ints_supported(self):
        assert truncate_lsbs(13, 2) == 12

    def test_negative_drop_rejected(self):
        with pytest.raises(ValueError):
            truncate_lsbs(np.array([1]), -1)

    @given(value=st.integers(-(1 << 40), 1 << 40),
           drop=st.integers(0, 20))
    def test_properties(self, value, drop):
        out = truncate_lsbs(value, drop)
        # Low bits zeroed, error bounded and non-negative (floor).
        assert out % (1 << drop) == 0
        assert 0 <= value - out <= truncation_error_bound(drop)

    @given(value=st.integers(-(1 << 40), 1 << 40),
           drop=st.integers(0, 20))
    def test_idempotent(self, value, drop):
        once = truncate_lsbs(value, drop)
        assert truncate_lsbs(once, drop) == once


class TestErrorBounds:
    def test_truncation_error_bound(self):
        assert truncation_error_bound(0) == 0
        assert truncation_error_bound(3) == 7

    def test_sum_error_bound(self):
        assert sum_error_bound(3, operands=2) == 14

    def test_product_error_bound_dominates_samples(self, rng):
        width, drop = 10, 4
        bound = product_error_bound(drop, width)
        a = rng.integers(-(1 << 9), 1 << 9, 500)
        b = rng.integers(-(1 << 9), 1 << 9, 500)
        err = np.abs(a * b - truncate_lsbs(a, drop) * truncate_lsbs(b, drop))
        assert err.max() <= bound


class TestArithmeticModels:
    def test_exact(self, rng):
        model = ExactArithmetic()
        a = rng.integers(-100, 100, 50)
        b = rng.integers(-100, 100, 50)
        assert np.array_equal(model.mul(a, b), a * b)
        assert np.array_equal(model.add(a, b), a + b)

    def test_truncated_zeroes_operands(self):
        model = TruncatedArithmetic(mul_drop_bits=2, add_drop_bits=3)
        assert model.mul(np.array([7]), np.array([7]))[0] == 16
        assert model.add(np.array([7]), np.array([9]))[0] == 8

    def test_truncated_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            TruncatedArithmetic(mul_drop_bits=-1)

    def test_component_model_matches_truncated_values(self, rng):
        component = Multiplier(8, precision=5)
        model = ComponentArithmetic(mul_component=component)
        trunc = TruncatedArithmetic(mul_drop_bits=3)
        a = rng.integers(-128, 128, 200)
        b = rng.integers(-128, 128, 200)
        assert np.array_equal(model.mul(a, b), trunc.mul(a, b))

    def test_component_model_falls_back_to_exact(self, rng):
        model = ComponentArithmetic(mul_component=Multiplier(8,
                                                             precision=5))
        a = rng.integers(-100, 100, 50)
        b = rng.integers(-100, 100, 50)
        assert np.array_equal(model.add(a, b), a + b)

    def test_labels(self):
        assert "exact" not in TruncatedArithmetic(1, 2).label
        model = ComponentArithmetic(mul_component=Multiplier(8,
                                                             precision=6))
        assert "multiplier_w8_p6" in model.label
        assert ComponentArithmetic().label == "exact"


class TestRecording:
    def test_records_and_delegates(self, rng):
        model = RecordingArithmetic()
        a = rng.integers(-50, 50, 20)
        b = rng.integers(-50, 50, 20)
        out = model.mul(a, b)
        assert np.array_equal(out, a * b)
        ra, rb = model.recorded_mul_stream()
        assert np.array_equal(ra, a)
        assert np.array_equal(rb, b)

    def test_concatenates_multiple_calls(self, rng):
        model = RecordingArithmetic()
        model.add(np.array([1, 2]), np.array([3, 4]))
        model.add(np.array([5]), np.array([6]))
        ra, rb = model.recorded_add_stream()
        assert ra.tolist() == [1, 2, 5]
        assert rb.tolist() == [3, 4, 6]

    def test_limit(self):
        model = RecordingArithmetic()
        model.mul(np.arange(10), np.arange(10))
        ra, rb = model.recorded_mul_stream(limit=4)
        assert len(ra) == 4

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            RecordingArithmetic().recorded_mul_stream()

    def test_wraps_inner_model(self):
        inner = TruncatedArithmetic(mul_drop_bits=2)
        model = RecordingArithmetic(inner)
        out = model.mul(np.array([7]), np.array([7]))
        assert out[0] == 16
