"""Tests for the synthetic image substrate and the DCT block codec."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.approx import ComponentArithmetic, TruncatedArithmetic
from repro.media import (IMAGE_NAMES, TransformCodec, all_images, blockize,
                         deblockize, make_image, roundtrip_psnr)
from repro.quality import psnr_db
from repro.rtl import Multiplier


class TestImages:
    def test_all_names_present(self):
        assert len(IMAGE_NAMES) == 9
        for name in IMAGE_NAMES:
            img = make_image(name, size=32)
            assert img.shape == (32, 32)
            assert img.dtype == np.uint8

    def test_deterministic(self):
        a = make_image("akiyo", size=64)
        b = make_image("akiyo", size=64)
        assert np.array_equal(a, b)

    def test_seed_changes_texture(self):
        a = make_image("mobile", size=64, seed=1)
        b = make_image("mobile", size=64, seed=2)
        assert not np.array_equal(a, b)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown image"):
            make_image("lenna")

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValueError):
            make_image("akiyo", size=30)

    def test_all_images_helper(self):
        imgs = all_images(size=16)
        assert set(imgs) == set(IMAGE_NAMES)

    def test_mobile_has_most_high_frequency_energy(self):
        # 'mobile' is the paper's stress case: most AC energy.
        def ac_energy(img):
            f = np.fft.fft2(img.astype(float))
            f[0, 0] = 0
            return float(np.abs(f).sum())
        energies = {n: ac_energy(make_image(n, 64)) for n in IMAGE_NAMES}
        assert max(energies, key=energies.get) == "mobile"

    def test_images_use_dynamic_range(self):
        for name in IMAGE_NAMES:
            img = make_image(name, 64)
            assert img.max() - img.min() > 80, name


class TestBlocking:
    def test_blockize_shape(self):
        img = np.arange(32 * 16).reshape(32, 16) % 256
        blocks, shape = blockize(img)
        assert blocks.shape == (8, 8, 8)
        assert shape == (32, 16)

    def test_roundtrip_identity(self, rng):
        img = rng.integers(0, 256, (24, 40))
        blocks, shape = blockize(img)
        assert np.array_equal(deblockize(blocks, shape), img)

    def test_block_contents(self):
        img = np.zeros((16, 16), dtype=int)
        img[8:, 8:] = 7
        blocks, __ = blockize(img)
        assert (blocks[3] == 7).all()
        assert (blocks[0] == 0).all()

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            blockize(np.zeros((10, 16)))

    @given(h=st.sampled_from([8, 16, 24]), w=st.sampled_from([8, 16, 32]))
    def test_roundtrip_property(self, h, w):
        img = np.arange(h * w).reshape(h, w) % 251
        blocks, shape = blockize(img)
        assert np.array_equal(deblockize(blocks, shape), img)


class TestCodec:
    def test_exact_roundtrip_is_high_quality(self):
        for name in ("akiyo", "mobile"):
            value = roundtrip_psnr(make_image(name, 64))
            assert value > 40.0, name

    def test_exact_baseline_near_paper(self):
        # Paper reports ~45 dB for the fresh fixed-point chain.
        values = [roundtrip_psnr(make_image(n, 64)) for n in IMAGE_NAMES]
        assert 42.0 < float(np.mean(values)) < 54.0

    def test_decode_shape_matches(self):
        img = make_image("suzie", 64)
        codec = TransformCodec()
        rec = codec.roundtrip(img)
        assert rec.shape == img.shape
        assert rec.dtype == np.uint8

    def test_explicit_shape_decode(self):
        img = make_image("miss", 32)
        codec = TransformCodec()
        coeffs = codec.encode(img)
        rec = codec.decode(coeffs, shape=(32, 32))
        assert rec.shape == (32, 32)

    def test_quantization_trades_quality(self):
        img = make_image("foreman", 64)
        fine = roundtrip_psnr(img, quant_bits=0)
        coarse = roundtrip_psnr(img, quant_bits=4)
        assert fine > coarse

    def test_truncation_degrades_gracefully(self):
        img = make_image("akiyo", 64)
        values = []
        for drop in (0, 6, 9, 11):
            arith = ComponentArithmetic(
                mul_component=Multiplier(32, precision=32 - drop))
            values.append(roundtrip_psnr(img, decode_arithmetic=arith))
        assert values == sorted(values, reverse=True)
        assert values[-1] < values[0] - 10

    def test_truncated_arithmetic_equivalent_to_component(self):
        img = make_image("mother", 32)
        drop = 8
        by_component = TransformCodec(decode_arithmetic=ComponentArithmetic(
            mul_component=Multiplier(32, precision=32 - drop)))
        by_values = TransformCodec(
            decode_arithmetic=TruncatedArithmetic(mul_drop_bits=drop))
        assert np.array_equal(by_component.roundtrip(img),
                              by_values.roundtrip(img))

    def test_paper_quality_pattern_at_8_bit_truncation(self):
        """Fig. 8(b) shape: ~8 dB average drop, mobile worst."""
        arith = ComponentArithmetic(mul_component=Multiplier(32,
                                                             precision=24))
        fresh, approx = {}, {}
        for name in IMAGE_NAMES:
            img = make_image(name, 64)
            fresh[name] = roundtrip_psnr(img)
            approx[name] = roundtrip_psnr(img, decode_arithmetic=arith)
        drop = np.mean([fresh[n] - approx[n] for n in IMAGE_NAMES])
        assert 3.0 < drop < 15.0
        assert min(approx, key=approx.get) in ("mobile", "carphone")
        assert np.mean(list(approx.values())) > 30.0
