"""Tests for the command-line interface and text report formatting."""

import json

import pytest

from repro.cli import build_parser, main
from repro.report import format_table, metrics_report_text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [100, 3.25]])
        lines = text.splitlines()
        assert lines[0].endswith("bb")
        assert "---" in lines[1]
        assert lines[2].split() == ["1", "2.5"]
        assert lines[3].split() == ["100", "3.2"]

    def test_floats_formatted_to_one_decimal(self):
        text = format_table(["x"], [[1.2345]])
        assert "1.2" in text and "1.2345" not in text


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("characterize", "timing", "flow", "schedule",
                        "export"):
            args = parser.parse_args([command]
                                     + (["--design", "idct"]
                                        if command in ("flow", "schedule")
                                        else []))
            assert args.command == command

    def test_years_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["timing", "--years", "1,5,10"])
        assert args.years == [1.0, 5.0, 10.0]

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_timing_command(self, capsys):
        code = main(["timing", "--component", "adder", "--width", "8",
                     "--years", "10", "--effort", "high"])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path" in out
        assert "10y_worst" in out
        assert "guardband" in out

    def test_characterize_command_with_output(self, capsys, tmp_path):
        path = tmp_path / "lib.json"
        code = main(["characterize", "--component", "adder", "--width",
                     "8", "--years", "10", "--sweep-bits", "3",
                     "--effort", "high", "--output", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "required precision" in out
        assert path.exists()
        from repro.core import AgingApproximationLibrary
        store = AgingApproximationLibrary.load(path)
        assert "adder_w8" in store

    def test_characterize_update_merges(self, capsys, tmp_path):
        path = tmp_path / "lib.json"
        main(["characterize", "--component", "adder", "--width", "8",
              "--years", "10", "--sweep-bits", "2", "--effort", "high",
              "--output", str(path)])
        capsys.readouterr()
        code = main(["characterize", "--component", "multiplier",
                     "--width", "6", "--years", "10", "--sweep-bits",
                     "2", "--effort", "high", "--output", str(path),
                     "--update"])
        assert code == 0
        from repro.core import AgingApproximationLibrary
        store = AgingApproximationLibrary.load(path)
        assert len(store) == 2

    def test_flow_command(self, capsys):
        code = main(["flow", "--design", "fir", "--width", "10",
                     "--years", "10", "--effort", "high"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validated: True" in out
        assert "mult" in out

    def test_flow_unknown_design(self, capsys):
        code = main(["flow", "--design", "gpu", "--width", "8"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown design" in err
        assert len(err.strip().splitlines()) == 1

    def test_unknown_component(self, capsys):
        code = main(["timing", "--component", "divider"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown component" in err
        assert len(err.strip().splitlines()) == 1

    def test_schedule_command(self, capsys):
        code = main(["schedule", "--design", "fir", "--width", "10",
                     "--years", "1,10", "--effort", "high"])
        out = capsys.readouterr().out
        assert code == 0
        assert "graceful-degradation schedule" in out
        assert "age_years" in out

    def test_export_command(self, capsys, tmp_path):
        verilog = tmp_path / "adder.v"
        sdf = tmp_path / "adder.sdf"
        code = main(["export", "--component", "adder", "--width", "8",
                     "--effort", "high", "--verilog", str(verilog),
                     "--sdf", str(sdf), "--years", "10"])
        assert code == 0
        assert "module" in verilog.read_text()
        assert "DELAYFILE" in sdf.read_text()
        # Exported artifacts round-trip through our own readers.
        from repro.netlist import from_verilog
        from repro.sta import gate_delays_from_sdf
        net = from_verilog(verilog.read_text())
        delays = gate_delays_from_sdf(sdf.read_text())
        assert set(delays) == {g.uid for g in net.gates} or len(delays) > 0

    def test_export_requires_target(self, capsys):
        code = main(["export", "--component", "adder", "--width", "8",
                     "--effort", "high"])
        err = capsys.readouterr().err
        assert code == 2
        assert "nothing to export" in err


class TestObservabilityFlags:
    def test_flags_uniform_across_subcommands(self):
        parser = build_parser()
        for command in ("characterize", "timing", "flow", "schedule",
                        "export"):
            args = parser.parse_args(
                [command, "--timings", "--trace", "t.json", "--metrics",
                 "m.json", "--manifest", "r.json", "--log-level", "debug"]
                + (["--design", "idct"]
                   if command in ("flow", "schedule") else []))
            assert args.trace == "t.json"
            assert args.metrics == "m.json"
            assert args.manifest == "r.json"
            assert args.log_level == "debug"
            assert args.timings

    def test_flow_trace_metrics_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "out.json"
        metrics = tmp_path / "metrics.json"
        code = main(["flow", "--design", "fir", "--width", "10",
                     "--years", "10", "--effort", "high", "--jobs", "2",
                     "--trace", str(trace), "--metrics", str(metrics)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace written to" in out
        assert "metrics written to" in out
        assert "run manifest written to" in out

        payload = json.loads(trace.read_text())
        timed = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in timed}
        assert "cli.flow" in names
        assert "sta.analyze" in names
        # Point synthesis traces as the one-time base synthesis plus
        # sweep derivations; a warm per-process base memo (inherited by
        # forked pool workers) can elide the former.
        assert "synth.synthesize" in names or "synth.sweep.derive" in names
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in timed)
        # Worker spans got re-parented home with their own pid.
        assert len({e["pid"] for e in timed}) >= 1

        snap = json.loads(metrics.read_text())
        counters = snap["counters"]
        # A warm per-process sweep memo (inherited by forked workers)
        # can serve every point without re-synthesizing; either path
        # must leave a metrics footprint.
        assert (counters.get("synth.runs", 0) > 0
                or counters.get("synth.sweep.base_memo_hits", 0) > 0)
        assert counters["sta.runs"] > 0
        if counters.get("synth.runs", 0) > 0:
            assert snap["histograms"]["synth.delay_ps"]["count"] > 0

        manifest = json.loads(
            (tmp_path / "metrics.manifest.json").read_text())
        assert manifest["command"] == "repro-aging flow"
        assert manifest["config"]["design"] == "fir"
        assert manifest["library"]["name"]
        mcounters = manifest["metrics"]["counters"]
        assert (mcounters.get("synth.runs", 0) > 0
                or mcounters.get("synth.sweep.base_memo_hits", 0) > 0)
        assert manifest["stages"]
        assert (manifest["peak_rss_bytes"] is None
                or manifest["peak_rss_bytes"] > 0)

    def test_jsonl_trace_export(self, capsys, tmp_path):
        trace = tmp_path / "out.jsonl"
        code = main(["timing", "--component", "adder", "--width", "6",
                     "--years", "10", "--effort", "high",
                     "--trace", str(trace)])
        assert code == 0
        rows = [json.loads(line)
                for line in trace.read_text().splitlines()]
        assert rows[0]["name"] == "cli.timing"
        assert rows[0]["depth"] == 0
        assert any(r["name"] == "synthesize" for r in rows)

    def test_timings_flag_on_timing_and_export(self, capsys, tmp_path):
        code = main(["timing", "--component", "adder", "--width", "6",
                     "--years", "10", "--effort", "high", "--timings"])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-stage timing:" in out
        assert "synthesize" in out

        verilog = tmp_path / "a.v"
        code = main(["export", "--component", "adder", "--width", "6",
                     "--effort", "high", "--verilog", str(verilog),
                     "--timings"])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-stage timing:" in out
        assert verilog.exists()

    def test_log_level_flag(self, capsys):
        import logging
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            code = main(["timing", "--component", "adder", "--width",
                         "6", "--years", "10", "--effort", "high",
                         "--log-level", "error"])
            assert code == 0
            assert root.level == logging.ERROR
        finally:
            for h in [h for h in root.handlers if h not in before]:
                root.removeHandler(h)

    def test_standalone_manifest_flag(self, capsys, tmp_path):
        manifest = tmp_path / "run.json"
        code = main(["timing", "--component", "adder", "--width", "6",
                     "--years", "10", "--effort", "high",
                     "--manifest", str(manifest)])
        assert code == 0
        data = json.loads(manifest.read_text())
        assert data["command"] == "repro-aging timing"
        assert data["metrics"]["counters"]["synth.runs"] >= 1


class TestMetricsReportText:
    def test_renders_counters_gauges_histograms(self):
        snap = {"schema": 1,
                "counters": {"cache.hits": 3, "cache.misses": 1,
                             "cache.bytes_read": 400,
                             "cache.bytes_written": 100},
                "gauges": {"sim.vectors_per_sec": 2.0e6},
                "histograms": {"synth.delay_ps": {
                    "count": 2, "sum": 2469.0, "min": 1200.0,
                    "max": 1269.0, "boundaries": [1e3],
                    "buckets": [0, 2]}}}
        text = metrics_report_text(snap)
        assert "cache.hits" in text
        assert "sim.vectors_per_sec" in text
        assert "synth.delay_ps" in text
        assert "cache hit ratio: 75%" in text
        assert "400 read" in text

    def test_empty_snapshot(self):
        text = metrics_report_text(
            {"schema": 1, "counters": {}, "gauges": {}, "histograms": {}})
        assert "(no metrics recorded)" in text

    def test_accepts_registry_object(self):
        from repro.obs import metrics as obs_metrics
        reg = obs_metrics.MetricsRegistry()
        reg.counter("sta.runs").inc(4)
        assert "sta.runs" in metrics_report_text(reg)


class TestReportHelpers:
    def test_characterization_report_text(self, lib):
        from repro.aging import worst_case
        from repro.core import characterize
        from repro.report import characterization_report
        from repro.rtl import Adder
        entry = characterize(Adder(8), lib, scenarios=[worst_case(10)],
                             precisions=[8, 6], effort="high")
        text = characterization_report(entry)
        assert "component adder_w8" in text
        assert "10y_worst_ps" in text
        assert "required precision" in text

    def test_flow_report_text(self, lib):
        from repro.aging import worst_case
        from repro.core import Block, Microarchitecture, remove_guardband
        from repro.report import flow_report_text
        from repro.rtl import Adder, Multiplier
        micro = Microarchitecture("mini", [
            Block("mult", Multiplier(10)), Block("acc", Adder(10))])
        report = remove_guardband(micro, lib, worst_case(10),
                                  effort="high")
        text = flow_report_text(report)
        assert "timing constraint" in text
        assert "mult" in text and "acc" in text
        assert "yes" in text
        assert "NO" not in text

    def test_schedule_report_text(self, lib):
        from repro.core import Block, Microarchitecture
        from repro.core.adaptive import plan_graceful_degradation
        from repro.report import schedule_report_text
        from repro.rtl import Adder, Multiplier
        micro = Microarchitecture("mini", [
            Block("mult", Multiplier(10)), Block("acc", Adder(10))])
        schedule = plan_graceful_degradation(micro, lib, [1, 10],
                                             effort="high")
        text = schedule_report_text(schedule)
        assert "graceful-degradation schedule" in text
        assert "age_years" in text
        assert text.count("\n") >= 4

    def test_timing_report_text(self, lib, adder8):
        from repro.report import timing_report_text
        from repro.sta import analyze
        text = timing_report_text(adder8, lib, analyze(adder8, lib))
        assert "critical path" in text
        assert "slowest outputs" in text
