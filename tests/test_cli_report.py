"""Tests for the command-line interface and text report formatting."""

import pytest

from repro.cli import build_parser, main
from repro.report import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [100, 3.25]])
        lines = text.splitlines()
        assert lines[0].endswith("bb")
        assert "---" in lines[1]
        assert lines[2].split() == ["1", "2.5"]
        assert lines[3].split() == ["100", "3.2"]

    def test_floats_formatted_to_one_decimal(self):
        text = format_table(["x"], [[1.2345]])
        assert "1.2" in text and "1.2345" not in text


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("characterize", "timing", "flow", "schedule",
                        "export"):
            args = parser.parse_args([command]
                                     + (["--design", "idct"]
                                        if command in ("flow", "schedule")
                                        else []))
            assert args.command == command

    def test_years_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["timing", "--years", "1,5,10"])
        assert args.years == [1.0, 5.0, 10.0]

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_timing_command(self, capsys):
        code = main(["timing", "--component", "adder", "--width", "8",
                     "--years", "10", "--effort", "high"])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path" in out
        assert "10y_worst" in out
        assert "guardband" in out

    def test_characterize_command_with_output(self, capsys, tmp_path):
        path = tmp_path / "lib.json"
        code = main(["characterize", "--component", "adder", "--width",
                     "8", "--years", "10", "--sweep-bits", "3",
                     "--effort", "high", "--output", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "required precision" in out
        assert path.exists()
        from repro.core import AgingApproximationLibrary
        store = AgingApproximationLibrary.load(path)
        assert "adder_w8" in store

    def test_characterize_update_merges(self, capsys, tmp_path):
        path = tmp_path / "lib.json"
        main(["characterize", "--component", "adder", "--width", "8",
              "--years", "10", "--sweep-bits", "2", "--effort", "high",
              "--output", str(path)])
        capsys.readouterr()
        code = main(["characterize", "--component", "multiplier",
                     "--width", "6", "--years", "10", "--sweep-bits",
                     "2", "--effort", "high", "--output", str(path),
                     "--update"])
        assert code == 0
        from repro.core import AgingApproximationLibrary
        store = AgingApproximationLibrary.load(path)
        assert len(store) == 2

    def test_flow_command(self, capsys):
        code = main(["flow", "--design", "fir", "--width", "10",
                     "--years", "10", "--effort", "high"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validated: True" in out
        assert "mult" in out

    def test_flow_unknown_design(self):
        with pytest.raises(SystemExit, match="unknown design"):
            main(["flow", "--design", "gpu", "--width", "8"])

    def test_unknown_component(self):
        with pytest.raises(SystemExit, match="unknown component"):
            main(["timing", "--component", "divider"])

    def test_schedule_command(self, capsys):
        code = main(["schedule", "--design", "fir", "--width", "10",
                     "--years", "1,10", "--effort", "high"])
        out = capsys.readouterr().out
        assert code == 0
        assert "graceful-degradation schedule" in out
        assert "age_years" in out

    def test_export_command(self, capsys, tmp_path):
        verilog = tmp_path / "adder.v"
        sdf = tmp_path / "adder.sdf"
        code = main(["export", "--component", "adder", "--width", "8",
                     "--effort", "high", "--verilog", str(verilog),
                     "--sdf", str(sdf), "--years", "10"])
        assert code == 0
        assert "module" in verilog.read_text()
        assert "DELAYFILE" in sdf.read_text()
        # Exported artifacts round-trip through our own readers.
        from repro.netlist import from_verilog
        from repro.sta import gate_delays_from_sdf
        net = from_verilog(verilog.read_text())
        delays = gate_delays_from_sdf(sdf.read_text())
        assert set(delays) == {g.uid for g in net.gates} or len(delays) > 0

    def test_export_requires_target(self):
        with pytest.raises(SystemExit, match="nothing to export"):
            main(["export", "--component", "adder", "--width", "8",
                  "--effort", "high"])


class TestReportHelpers:
    def test_characterization_report_text(self, lib):
        from repro.aging import worst_case
        from repro.core import characterize
        from repro.report import characterization_report
        from repro.rtl import Adder
        entry = characterize(Adder(8), lib, scenarios=[worst_case(10)],
                             precisions=[8, 6], effort="high")
        text = characterization_report(entry)
        assert "component adder_w8" in text
        assert "10y_worst_ps" in text
        assert "required precision" in text

    def test_flow_report_text(self, lib):
        from repro.aging import worst_case
        from repro.core import Block, Microarchitecture, remove_guardband
        from repro.report import flow_report_text
        from repro.rtl import Adder, Multiplier
        micro = Microarchitecture("mini", [
            Block("mult", Multiplier(10)), Block("acc", Adder(10))])
        report = remove_guardband(micro, lib, worst_case(10),
                                  effort="high")
        text = flow_report_text(report)
        assert "timing constraint" in text
        assert "mult" in text and "acc" in text
        assert "yes" in text
        assert "NO" not in text

    def test_schedule_report_text(self, lib):
        from repro.core import Block, Microarchitecture
        from repro.core.adaptive import plan_graceful_degradation
        from repro.report import schedule_report_text
        from repro.rtl import Adder, Multiplier
        micro = Microarchitecture("mini", [
            Block("mult", Multiplier(10)), Block("acc", Adder(10))])
        schedule = plan_graceful_degradation(micro, lib, [1, 10],
                                             effort="high")
        text = schedule_report_text(schedule)
        assert "graceful-degradation schedule" in text
        assert "age_years" in text
        assert text.count("\n") >= 4

    def test_timing_report_text(self, lib, adder8):
        from repro.report import timing_report_text
        from repro.sta import analyze
        text = timing_report_text(adder8, lib, analyze(adder8, lib))
        assert "critical path" in text
        assert "slowest outputs" in text
