"""Tier-2 deep verification (``pytest -m slow``).

These are the expensive end-to-end guarantees: hundreds of fuzzed
netlists through all four engines, a full verify_component stack on a
16-bit multiplier, and the PSNR endpoint claims from EXPERIMENTS.md.
Tier-1 skips them via the default ``-m "not slow"`` addopts.
"""

import pytest

from repro.aging import worst_case
from repro.rtl import Multiplier
from repro.verify import (check_psnr_endpoints, fuzz_engines,
                          verify_component)

pytestmark = [pytest.mark.slow, pytest.mark.verify]


def test_fuzz_two_hundred_netlists_all_engines(verify_library,
                                               tmp_path):
    report = fuzz_engines(verify_library, rounds=220, rng=2026,
                          corpus_dir=str(tmp_path / "corpus"))
    assert report.rounds >= 200
    assert report.engines == ("bytes", "packed", "event", "timed")
    failures = "\n".join(cx.describe()
                         for cx in report.counterexamples)
    assert report.passed, failures
    # A healthy fuzz run keeps discovering structure for a while.
    assert report.features > 50
    assert report.corpus_saved


def test_verify_component_full_stack_mult16(verify_library):
    report = verify_component(Multiplier(16), verify_library,
                              [worst_case(1), worst_case(10)],
                              vectors=96,
                              precisions=range(16, 11, -1),
                              fuzz_rounds=30, rng=7, cache=None)
    assert report.passed, report.describe()
    assert report.golden_vectors > 96
    assert report.oracle.passed
    assert all(r.passed for r in report.invariants)
    assert report.fuzz.passed
    assert report.counterexamples == []


def test_psnr_endpoints_fresh_vs_aged(verify_library):
    results = check_psnr_endpoints(verify_library, image="akiyo",
                                   size=32, width=32, years=10.0)
    failed = [r for r in results if not r.passed]
    assert failed == [], "\n".join(r.describe() for r in failed)
    names = {r.name for r in results}
    assert names == {"fresh_psnr_endpoint", "aged_psnr_collapse"}
