"""Unit tests for the standard-cell substrate."""

import itertools

import pytest

from repro.cells import (CELL_KINDS, Cell, CellLibrary, cell_arity,
                         cell_function, default_library, nangate45)


class TestCellFunctions:
    def test_every_kind_has_matching_arity(self):
        for kind, (arity, func) in CELL_KINDS.items():
            for combo in itertools.product((0, 1), repeat=arity):
                assert func(*combo) in (0, 1), kind

    def test_cell_function_lookup(self):
        assert cell_function("INV")(0) == 1
        assert cell_function("NAND2")(1, 1) == 0

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            cell_function("NAND9")
        with pytest.raises(KeyError):
            cell_arity("NAND9")

    def test_inverting_pairs_consistent(self):
        for a in (0, 1):
            for b in (0, 1):
                assert cell_function("NAND2")(a, b) == \
                    1 - cell_function("AND2")(a, b)
                assert cell_function("NOR2")(a, b) == \
                    1 - cell_function("OR2")(a, b)
                assert cell_function("XNOR2")(a, b) == \
                    1 - cell_function("XOR2")(a, b)


class TestCellModel:
    def test_delay_is_linear_in_load(self, lib):
        cell = lib["NAND2_X1"]
        d0 = cell.delay_ps(0.0)
        d5 = cell.delay_ps(5.0)
        d10 = cell.delay_ps(10.0)
        assert d5 - d0 == pytest.approx(d10 - d5)
        assert d0 == pytest.approx(cell.intrinsic_ps)

    def test_aging_weights_sum_to_one(self, lib):
        for cell in lib:
            assert cell.wp + cell.wn == pytest.approx(1.0), cell.name

    def test_evaluate_delegates_to_function(self, lib):
        assert lib["XOR2_X1"].evaluate(1, 0) == 1
        assert lib["XOR2_X1"].evaluate(1, 1) == 0


class TestLibrary:
    def test_all_kinds_at_all_drives(self, lib):
        for kind in CELL_KINDS:
            for drive in (1, 2, 4):
                assert "%s_X%d" % (kind, drive) in lib

    def test_missing_cell_raises_with_context(self, lib):
        with pytest.raises(KeyError, match="NAND3_X1"):
            lib["NAND3_X1"]

    def test_variants_sorted_by_drive(self, lib):
        drives = [c.drive for c in lib.variants("INV")]
        assert drives == [1, 2, 4]

    def test_resize(self, lib):
        assert lib.resize("NAND2_X1", 4) == "NAND2_X4"
        with pytest.raises(KeyError):
            lib.resize("NAND2_X1", 8)

    def test_next_drive_up(self, lib):
        assert lib.next_drive_up("INV_X1") == "INV_X2"
        assert lib.next_drive_up("INV_X2") == "INV_X4"
        assert lib.next_drive_up("INV_X4") is None

    def test_stronger_cells_are_faster_but_bigger(self, lib):
        for kind in CELL_KINDS:
            x1 = lib["%s_X1" % kind]
            x4 = lib["%s_X4" % kind]
            assert x4.drive_res < x1.drive_res
            assert x4.area > x1.area
            assert x4.leakage_nw > x1.leakage_nw
            assert x4.input_cap_ff > x1.input_cap_ff

    def test_default_library_is_shared(self):
        assert default_library() is default_library()

    def test_len_and_iter(self, lib):
        assert len(lib) == len(list(lib))
        assert len(lib) == len(CELL_KINDS) * 3

    def test_kinds(self, lib):
        assert set(lib.kinds()) == set(CELL_KINDS)

    def test_custom_drive_subset(self):
        small = nangate45(drives=(1,))
        assert len(small) == len(CELL_KINDS)
        assert small.next_drive_up("INV_X1") is None

    def test_electrical_parameters_positive(self, lib):
        for cell in lib:
            assert cell.area > 0
            assert cell.leakage_nw > 0
            assert cell.input_cap_ff > 0
            assert cell.intrinsic_ps > 0
            assert cell.drive_res > 0
