"""Tests for switching-activity extraction and actual-case stress."""

import numpy as np
import pytest

from repro.netlist import NetlistBuilder
from repro.rtl import Adder
from repro.sim import (extract_stress, operand_stream_bits,
                       simulate_activity)
from repro.synth import synthesize_netlist


def xor_net():
    builder = NetlistBuilder(name="x")
    a, b = builder.inputs(2, "x")
    return builder.outputs([builder.xor2(a, b)])


class TestSignalProbability:
    def test_known_probabilities(self, lib):
        net = xor_net()
        a, b = net.primary_inputs
        stim = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        report = simulate_activity(net, lib, stim)
        assert report.signal_probability[a] == pytest.approx(0.5)
        assert report.signal_probability[b] == pytest.approx(0.5)
        assert report.signal_probability[net.primary_outputs[0]] == \
            pytest.approx(0.5)
        assert report.vectors == 4

    def test_constant_inputs(self, lib):
        net = xor_net()
        stim = np.ones((10, 2), dtype=np.uint8)
        report = simulate_activity(net, lib, stim)
        assert report.signal_probability[net.primary_outputs[0]] == 0.0
        assert report.toggle_rate[net.primary_outputs[0]] == 0.0

    def test_toggle_rate_counts_transitions(self, lib):
        net = xor_net()
        a, b = net.primary_inputs
        stim = np.array([[0, 0], [1, 0], [0, 0], [1, 0]], dtype=np.uint8)
        report = simulate_activity(net, lib, stim)
        assert report.toggle_rate[a] == pytest.approx(1.0)
        assert report.toggle_rate[b] == 0.0
        assert report.toggle_rate[net.primary_outputs[0]] == \
            pytest.approx(1.0)

    def test_single_vector_has_zero_toggles(self, lib):
        net = xor_net()
        report = simulate_activity(net, lib,
                                   np.array([[1, 0]], dtype=np.uint8))
        assert all(v == 0.0 for v in report.toggle_rate.values())

    def test_shape_validation(self, lib):
        net = xor_net()
        with pytest.raises(ValueError):
            simulate_activity(net, lib, np.zeros((4, 3), dtype=np.uint8))

    def test_gate_output_toggle_keyed_by_uid(self, lib):
        net = xor_net()
        stim = np.array([[0, 0], [1, 0]], dtype=np.uint8)
        report = simulate_activity(net, lib, stim)
        per_gate = report.gate_output_toggle(net)
        assert set(per_gate) == {g.uid for g in net.gates}


class TestStressExtraction:
    def test_extract_stress_covers_all_gates(self, lib, adder8,
                                             adder8_component, rng):
        a, b = adder8_component.random_operands(200, rng=rng)
        bits = operand_stream_bits((a, b),
                                   adder8_component.operand_widths)
        ann = extract_stress(adder8, lib, bits, label="test")
        assert ann.label == "test"
        assert set(ann.per_gate) == {g.uid for g in adder8.gates}

    def test_stress_factors_in_unit_interval(self, lib, adder8,
                                             adder8_component, rng):
        a, b = adder8_component.random_operands(200, rng=rng)
        bits = operand_stream_bits((a, b),
                                   adder8_component.operand_widths)
        ann = extract_stress(adder8, lib, bits)
        for sp, sn in ann.per_gate.values():
            assert 0.0 <= sp <= 1.0
            assert 0.0 <= sn <= 1.0
            assert sp + sn == pytest.approx(1.0)

    def test_biased_stimulus_biases_stress(self, lib):
        net = xor_net()
        # Inputs held at 1: nMOS fully stressed, pMOS recovers.
        ann = extract_stress(net, lib, np.ones((20, 2), dtype=np.uint8))
        sp, sn = ann.per_gate[net.gates[0].uid]
        assert sn == pytest.approx(1.0)
        assert sp == pytest.approx(0.0)


class TestOperandPacking:
    def test_layout_matches_component_interface(self, adder8_component):
        a = np.array([1], dtype=np.int64)
        b = np.array([-1], dtype=np.int64)
        bits = operand_stream_bits((a, b), adder8_component.operand_widths)
        assert bits.shape == (1, 16)
        assert bits[0, :8].tolist() == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bits[0, 8:].tolist() == [1] * 8

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            operand_stream_bits((np.array([1]),), [8, 8])
