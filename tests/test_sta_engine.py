"""Tests for the vectorized batched/incremental STA engine.

The engine's contract is *bit-exactness* against the scalar oracle
(`repro.sta.analyze`): every comparison here is ``==`` on floats, no
tolerance anywhere.
"""

import pathlib

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.aging import (ActualStress, AgingScenario, balance_case,
                         worst_case)
from repro.aging.delay import (clear_multiplier_memo, gate_delays,
                               multiplier_memo_info)
from repro.cells import DegradationAwareLibrary
from repro.core.characterize import characterize, truncation_screen
from repro.obs import metrics as obs_metrics
from repro.rtl import Adder, Multiplier
from repro.sta import analyze
from repro.sta.engine import (analyze_batch, analyze_incremental,
                              compile_timing, tie_low,
                              truncated_input_nets)
from repro.synth import synthesize_netlist
from repro.verify import load_corpus

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"

CORNERS = [None, worst_case(1.0), worst_case(10.0), balance_case(5.0)]


def assert_report_equal(got, want):
    """Bit-exact TimingReport equality (arrivals restricted to *want*)."""
    assert got.critical_path_ps == want.critical_path_ps
    assert got.gate_delays == want.gate_delays
    for net, arrival in want.arrivals.items():
        assert got.arrivals[net] == arrival
    assert got.scenario_label == want.scenario_label


class TestBatchBitExact:
    @pytest.mark.parametrize("fixture", ["adder8", "mult6", "mac4"])
    def test_matches_scalar_on_components(self, request, lib, fixture):
        netlist = request.getfixturevalue(fixture)
        batch = analyze_batch(netlist, lib, CORNERS)
        for idx, corner in enumerate(CORNERS):
            scalar = analyze(netlist, lib, scenario=corner)
            assert batch.report(idx).arrivals == scalar.arrivals
            assert_report_equal(batch.report(idx), scalar)

    def test_actual_stress_corner(self, lib, adder8, rng):
        per_gate = {g.uid: (float(sp), float(sn))
                    for g, sp, sn in zip(adder8.gates,
                                         rng.uniform(0, 1, adder8.num_gates),
                                         rng.uniform(0, 1, adder8.num_gates))}
        scenario = AgingScenario(
            years=10.0, stress=ActualStress(per_gate, label="actual_test"))
        batch = analyze_batch(adder8, lib, [None, scenario])
        scalar = analyze(adder8, lib, scenario=scenario)
        assert_report_equal(batch.report(1), scalar)

    def test_degradation_corner(self, lib, adder8):
        degraded = DegradationAwareLibrary(lib, lifetimes=(1.0, 10.0))
        corners = [None, worst_case(10.0), balance_case(1.0)]
        batch = analyze_batch(adder8, lib, corners, degradation=degraded)
        for idx, corner in enumerate(corners):
            scalar = analyze(adder8, lib, scenario=corner,
                             degradation=degraded)
            assert_report_equal(batch.report(idx), scalar)

    def test_fresh_equals_scenario_zero_years(self, lib, adder8):
        batch = analyze_batch(adder8, lib, [None, worst_case(0.0)])
        fresh, zero = batch.critical_paths_ps
        assert fresh == zero

    def test_corner_labels_and_lookup(self, lib, adder8):
        batch = analyze_batch(adder8, lib, CORNERS)
        assert batch.labels == ("fresh", "1y_worst", "10y_worst",
                                "5y_balance")
        assert batch.corner_index("10y_worst") == 2
        with pytest.raises(KeyError):
            batch.corner_index("3y_worst")
        po = adder8.primary_outputs[-1]
        assert batch.arrival_ps(po, "fresh") == \
            analyze(adder8, lib).arrivals[po]

    def test_empty_corner_list_rejected(self, lib, adder8):
        with pytest.raises(ValueError, match="at least one corner"):
            analyze_batch(adder8, lib, [])

    def test_guardband_consistency(self, lib, adder8):
        from repro.aging import guardband_ps

        scenario = worst_case(10.0)
        fresh = analyze(adder8, lib).critical_path_ps
        aged = analyze(adder8, lib, scenario=scenario).critical_path_ps
        assert guardband_ps(adder8, lib, scenario) == aged - fresh


class TestProgramMemo:
    def test_batches_share_one_program(self, lib):
        netlist = synthesize_netlist(Adder(4), lib, effort="low")
        with obs_metrics.scoped() as reg:
            first = analyze_batch(netlist, lib, [None])
            second = analyze_batch(netlist, lib, [worst_case(10.0)])
        assert second.program is first.program
        assert reg.value(obs_metrics.TIMING_MEMO_HITS) == 1

    def test_cell_mutation_recompiles(self, lib):
        netlist = synthesize_netlist(Adder(4), lib, effort="low")
        before = compile_timing(netlist, lib)
        gate = netlist.gates[0]
        stronger = lib.next_drive_up(gate.cell)
        assert stronger is not None
        gate.cell = stronger
        after = compile_timing(netlist, lib)
        assert after is not before
        # And the recompiled program still matches the scalar oracle.
        assert_report_equal(analyze_batch(netlist, lib, [None]).report(0),
                            analyze(netlist, lib))

    def test_memo_false_bypasses(self, lib):
        netlist = synthesize_netlist(Adder(4), lib, effort="low")
        assert compile_timing(netlist, lib, memo=False) is not \
            compile_timing(netlist, lib, memo=False)

    def test_metrics_emitted(self, lib, adder8):
        with obs_metrics.scoped() as reg:
            analyze_batch(adder8, lib, CORNERS)
            tied = adder8.primary_inputs[:4]
            analyze_incremental(adder8, lib, tied,
                                corners=[None, worst_case(10.0)])
        assert reg.value(obs_metrics.STA_BATCH_RUNS) >= 1
        assert reg.value(obs_metrics.STA_BATCH_CORNERS) >= len(CORNERS)
        assert reg.value(obs_metrics.STA_INCREMENTAL_RUNS) == 1
        hist = reg.get(obs_metrics.STA_INCREMENTAL_CONE_FRACTION)
        assert hist is not None and hist.count == 1


class TestIncremental:
    def test_matches_tie_low_oracle(self, lib, mult6):
        tied = mult6.primary_inputs[:6]
        inc = analyze_incremental(mult6, lib, tied, corners=CORNERS)
        swept = tie_low(mult6, tied)
        for idx, corner in enumerate(CORNERS):
            scalar = analyze(swept, lib, scenario=corner)
            assert_report_equal(inc.report(idx), scalar)

    def test_dropped_matches_swept_gate_count(self, lib, mult6):
        tied = mult6.primary_inputs[:8]
        inc = analyze_incremental(mult6, lib, tied)
        swept = tie_low(mult6, tied)
        assert int(inc.dropped.sum()) == mult6.num_gates - swept.num_gates
        assert 0.0 < inc.cone_fraction <= 1.0

    def test_no_tied_inputs_is_baseline(self, lib, adder8):
        baseline = analyze_batch(adder8, lib, CORNERS)
        inc = analyze_incremental(adder8, lib, [], baseline=baseline,
                                  program=baseline.program)
        assert inc.critical_paths_ps == baseline.critical_paths_ps
        assert inc.cone_fraction == 0.0

    def test_all_tied_zeroes_everything(self, lib, adder8):
        inc = analyze_incremental(adder8, lib, adder8.primary_inputs)
        assert inc.critical_paths_ps == [0.0]
        assert bool(inc.dropped.all())

    def test_stray_net_rejected(self, lib, adder8):
        with pytest.raises(ValueError, match="not primary inputs"):
            analyze_incremental(adder8, lib, [999999])
        with pytest.raises(ValueError, match="not primary inputs"):
            tie_low(adder8, [999999])

    def test_foreign_baseline_rejected(self, lib, adder8, mult6):
        baseline = analyze_batch(mult6, lib, [None])
        with pytest.raises(ValueError, match="different .* program"):
            analyze_incremental(adder8, lib, adder8.primary_inputs[:1],
                                baseline=baseline,
                                program=compile_timing(adder8, lib))

    def test_tie_low_preserves_uids_and_annotations(self, lib, mult6):
        tied = mult6.primary_inputs[:4]
        swept = tie_low(mult6, tied)
        orig_uids = {g.uid for g in mult6.gates}
        assert all(g.uid in orig_uids for g in swept.gates)
        assert set(swept.primary_inputs) == \
            set(mult6.primary_inputs) - set(tied)


class TestTruncatedInputNets:
    def test_full_precision_ties_nothing(self, lib, mult6_component, mult6):
        assert truncated_input_nets(mult6_component, mult6, 6) == []

    def test_per_operand_lsbs(self, lib, mult6_component, mult6):
        tied = truncated_input_nets(mult6_component, mult6, 4)
        pis = mult6.primary_inputs
        assert tied == pis[0:2] + pis[6:8]

    def test_precision_above_width_rejected(self, mult6_component, mult6):
        with pytest.raises(ValueError, match="exceeds width"):
            truncated_input_nets(mult6_component, mult6, 7)


class TestTruncationScreen:
    @pytest.fixture(scope="class")
    def screen(self, lib):
        return truncation_screen(Adder(8), lib,
                                 [worst_case(10.0), balance_case(5.0)],
                                 precisions=range(8, 3, -1), effort="high")

    def test_full_precision_matches_batch(self, lib, screen):
        netlist = synthesize_netlist(Adder(8), lib, effort="high")
        batch = analyze_batch(netlist, lib,
                              [None, worst_case(10.0), balance_case(5.0)])
        for label, cp in zip(screen.scenario_labels,
                             batch.critical_paths_ps):
            assert screen.delay_ps(8, label) == cp

    def test_delays_nonincreasing_in_truncation(self, screen):
        for label in screen.scenario_labels:
            delays = [screen.delay_ps(p, label)
                      for p in screen.precisions]
            assert all(a >= b for a, b in zip(delays, delays[1:]))

    def test_rows_and_required_precision(self, screen):
        rows = screen.to_rows()
        assert [r["precision"] for r in rows] == list(screen.precisions)
        assert screen.required_precision("fresh") == 8
        assert rows[0]["cone_fraction"] == 0.0

    def test_actual_case_spec_rejected(self, lib):
        from repro.core import ActualCaseSpec

        spec = ActualCaseSpec(years=10.0, label="x",
                              operands=(np.arange(4), np.arange(4)))
        with pytest.raises(ValueError, match="uniform-stress"):
            truncation_screen(Adder(8), lib, [spec])


class TestCharacterizeEngines:
    def test_batched_equals_scalar_tables(self, lib):
        kwargs = dict(scenarios=[worst_case(1.0), worst_case(10.0)],
                      precisions=range(6, 3, -1), effort="low",
                      cache=None)
        batched = characterize(Adder(6), lib, sta="batched", **kwargs)
        scalar = characterize(Adder(6), lib, sta="scalar", **kwargs)
        assert batched.fresh_ps == scalar.fresh_ps
        assert batched.aged_ps == scalar.aged_ps

    def test_bad_sta_choice_rejected(self, lib):
        with pytest.raises(ValueError, match="sta must be"):
            characterize(Adder(6), lib, scenarios=[worst_case(1.0)],
                         sta="magic")


class TestMultiplierMemo:
    def test_scenario_keyed_entries(self, lib, adder8):
        clear_multiplier_memo()
        one = gate_delays(adder8, lib, scenario=worst_case(1.0))
        ten = gate_delays(adder8, lib, scenario=worst_case(10.0))
        bal = gate_delays(adder8, lib, scenario=balance_case(10.0))
        assert all(ten[uid] > one[uid] for uid in one)
        assert all(bal[uid] < ten[uid] for uid in ten)
        # Replaying a value-equal scenario hits the memo, not the model.
        bti_info, __ = multiplier_memo_info()
        misses = bti_info.misses
        again = gate_delays(adder8, lib, scenario=worst_case(10.0))
        assert again == ten
        bti_info, __ = multiplier_memo_info()
        assert bti_info.misses == misses
        assert bti_info.hits > 0

    def test_model_called_once_per_distinct_key(self, lib, adder8,
                                                monkeypatch):
        from repro.aging import bti as bti_mod

        calls = []
        real = bti_mod.BTIModel.cell_multiplier

        def counting(self, sp, sn, years, wp=0.5, wn=0.5):
            calls.append((sp, sn, years, wp, wn))
            return real(self, sp, sn, years, wp=wp, wn=wn)

        monkeypatch.setattr(bti_mod.BTIModel, "cell_multiplier", counting)
        clear_multiplier_memo()
        gate_delays(adder8, lib, scenario=worst_case(10.0))
        distinct = len(set(calls))
        assert len(calls) == distinct  # one evaluation per (cell, corner)
        assert distinct < adder8.num_gates
        # The batched engine reuses the very same cached floats.
        analyze_batch(adder8, lib, [worst_case(10.0)])
        assert len(calls) == distinct

    def test_batch_and_scalar_share_memo(self, lib, adder8):
        clear_multiplier_memo()
        analyze_batch(adder8, lib, [balance_case(10.0)])
        bti_info, __ = multiplier_memo_info()
        misses = bti_info.misses
        analyze(adder8, lib, scenario=balance_case(10.0))
        bti_info, __ = multiplier_memo_info()
        assert bti_info.misses == misses


# ---------------------------------------------------------------------------
# property test over the fuzz regression corpus (satellite 3)
# ---------------------------------------------------------------------------

_CORPUS = load_corpus(CORPUS_DIR)


@pytest.mark.skipif(not _CORPUS, reason="no fuzz corpus committed")
@given(data=st.data())
def test_engine_matches_scalar_on_corpus(lib, data):
    """Batched + incremental == scalar, on every corpus netlist."""
    __, netlist = data.draw(st.sampled_from(_CORPUS))
    years = data.draw(st.sampled_from([0.0, 1.0, 5.0, 10.0]))
    factory = data.draw(st.sampled_from([worst_case, balance_case]))
    corners = [None, factory(years)]

    batch = analyze_batch(netlist, lib, corners)
    for idx, corner in enumerate(corners):
        scalar = analyze(netlist, lib, scenario=corner)
        assert batch.report(idx).arrivals == scalar.arrivals
        assert batch.report(idx).gate_delays == scalar.gate_delays
        assert batch.critical_paths_ps[idx] == scalar.critical_path_ps

    pis = list(netlist.primary_inputs)
    tied = data.draw(st.lists(st.sampled_from(pis), unique=True,
                              max_size=len(pis))) if pis else []
    inc = analyze_incremental(netlist, lib, tied, corners=corners,
                              baseline=batch, program=batch.program)
    swept = tie_low(netlist, tied)
    for idx, corner in enumerate(corners):
        scalar = analyze(swept, lib, scenario=corner)
        got = inc.report(idx)
        assert got.critical_path_ps == scalar.critical_path_ps
        assert got.gate_delays == scalar.gate_delays
        for net, arrival in scalar.arrivals.items():
            assert got.arrivals[net] == arrival
