"""End-to-end integration tests retelling the paper's story at small scale.

The narrative, on laptop-sized components:

1. a fresh circuit at its own f_max works perfectly;
2. remove the guardband and let it age -> nondeterministic timing errors
   appear and image quality collapses (motivational study);
3. run the paper's flow: characterize, pick a reduced precision,
   validate -> the aged, truncated circuit at the *original* clock is
   timing-clean and its (bounded, deterministic) approximation error is
   the only quality cost.
"""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.approx import (ComponentArithmetic, GateLevelArithmetic,
                          TimedComponentModel)
from repro.core import (AgingApproximationLibrary, Block, Microarchitecture,
                        characterize, remove_guardband)
from repro.media import TransformCodec, make_image
from repro.quality import psnr_db
from repro.rtl import Adder, KoggeStoneAdder, Multiplier, WallaceMultiplier
from repro.sta import critical_path_delay
from repro.synth import synthesize_netlist


class TestMotivationalStudy:
    """Section II at small scale."""

    def test_fresh_circuit_is_clean_but_aged_circuit_errs(self, lib, rng):
        component = KoggeStoneAdder(32)
        fresh = TimedComponentModel(component, lib)
        aged = TimedComponentModel(component, lib, scenario=worst_case(10),
                                   t_clock_ps=fresh.t_clock_ps)
        a, b = component.random_operands(4000, rng=rng)
        assert fresh.error_statistics(a, b)["error_rate"] == 0.0
        assert aged.error_statistics(a, b)["error_rate"] > 0.01

    def test_aged_image_chain_collapses(self, lib):
        image = make_image("akiyo", 32)
        baseline = psnr_db(image, TransformCodec().roundtrip(image))
        mult = WallaceMultiplier(32, final_adder="ks")
        aged = TimedComponentModel(mult, lib, scenario=worst_case(10))
        codec = TransformCodec(
            decode_arithmetic=GateLevelArithmetic(mul_model=aged))
        degraded = psnr_db(image, codec.roundtrip(image))
        assert baseline > 40.0
        assert degraded < baseline - 15.0


class TestGuardbandConversion:
    """Sections IV-V at small scale."""

    @pytest.fixture(scope="class")
    def flow_report(self, lib):
        micro = Microarchitecture("mini_idct", [
            Block(name="mult", component=Multiplier(12), instances=4),
            Block(name="acc", component=Adder(12), instances=3),
        ])
        return remove_guardband(micro, lib, worst_case(10), effort="high")

    def test_flow_restores_timing(self, flow_report, lib):
        assert flow_report.meets_constraint
        assert flow_report.outcome.validated

    def test_truncated_component_is_timing_clean_when_aged(self, lib,
                                                           flow_report,
                                                           rng):
        decision = flow_report.outcome.decisions["mult"]
        assert decision.approximated
        reduced = Multiplier(12, precision=decision.chosen_precision)
        model = TimedComponentModel(
            reduced, lib, scenario=worst_case(10),
            t_clock_ps=flow_report.constraint_ps, effort="high")
        a, b = reduced.random_operands(2000, rng=rng)
        result = model.apply_detailed(a, b)
        assert not result.violations.any()
        # The only deviation from exact is the deterministic truncation.
        from repro.sim import bits_to_int
        sampled = bits_to_int(result.sampled)
        assert np.array_equal(sampled, reduced.approximate(a, b))

    def test_deterministic_error_bound_holds_under_aging(self, lib,
                                                         flow_report, rng):
        decision = flow_report.outcome.decisions["mult"]
        reduced = Multiplier(12, precision=decision.chosen_precision)
        model = TimedComponentModel(
            reduced, lib, scenario=worst_case(10),
            t_clock_ps=flow_report.constraint_ps, effort="high")
        a, b = reduced.random_operands(1000, rng=rng)
        out = model.apply(a, b)
        err = np.abs(out - reduced.exact(a, b))
        assert err.max() <= reduced.max_error_bound()


class TestCharacterizationConsistency:
    def test_library_prediction_matches_direct_synthesis(self, lib):
        """A characterized delay must equal re-synthesizing the variant."""
        entry = characterize(Adder(10), lib, scenarios=[worst_case(10)],
                             precisions=[10, 7], effort="high")
        direct = synthesize_netlist(Adder(10, precision=7), lib,
                                    effort="high")
        assert entry.fresh_ps[7] == pytest.approx(
            critical_path_delay(direct, lib))
        assert entry.aged_ps[(7, "10y_worst")] == pytest.approx(
            critical_path_delay(direct, lib, scenario=worst_case(10)))

    def test_quality_of_flow_choice_beats_timing_errors(self, lib):
        """The deterministic approximation must beat the chaos it
        replaces: truncated PSNR >> aged timing-error PSNR."""
        image = make_image("salesman", 32)
        aged_mult = TimedComponentModel(
            WallaceMultiplier(32, final_adder="ks"), lib,
            scenario=worst_case(10))
        chaotic = psnr_db(image, TransformCodec(
            decode_arithmetic=GateLevelArithmetic(
                mul_model=aged_mult)).roundtrip(image))
        truncated = psnr_db(image, TransformCodec(
            decode_arithmetic=ComponentArithmetic(
                mul_component=Multiplier(32,
                                         precision=24))).roundtrip(image))
        assert truncated > chaotic + 10.0
