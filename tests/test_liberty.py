"""Tests for the Liberty-style library export."""

import pytest

from repro.aging import DEFAULT_BTI, worst_case
from repro.cells import (DegradationAwareLibrary, degradation_tables_text,
                         read_liberty_cells, to_liberty)


class TestLibertyExport:
    def test_every_cell_present(self, lib):
        cells = read_liberty_cells(to_liberty(lib))
        assert set(cells) == {c.name for c in lib.cells()}

    def test_fresh_attributes_roundtrip(self, lib):
        cells = read_liberty_cells(to_liberty(lib))
        for cell in lib.cells():
            parsed = cells[cell.name]
            assert parsed["area"] == pytest.approx(cell.area, abs=1e-3)
            assert parsed["cell_leakage_power"] == pytest.approx(
                cell.leakage_nw, abs=1e-3)
            assert parsed["intrinsic_rise"] == pytest.approx(
                cell.intrinsic_ps, abs=1e-3)
            assert parsed["aging_delay_derate"] == pytest.approx(1.0)

    def test_aged_export_scales_timing(self, lib):
        fresh = read_liberty_cells(to_liberty(lib))
        aged = read_liberty_cells(to_liberty(lib,
                                             scenario=worst_case(10)))
        for name, parsed in aged.items():
            assert parsed["aging_delay_derate"] > 1.1
            assert parsed["intrinsic_rise"] == pytest.approx(
                fresh[name]["intrinsic_rise"]
                * parsed["aging_delay_derate"], rel=1e-3)

    def test_header_mentions_scenario(self, lib):
        text = to_liberty(lib, scenario=worst_case(10))
        assert 'library ("repro45_10y_worst")' in text
        assert 'nom_voltage : %.2f;' % DEFAULT_BTI.vdd in text


class TestDegradationTables:
    def test_dump_contains_every_kind_once(self, lib):
        degraded = DegradationAwareLibrary(lib, lifetimes=(10.0,))
        text = degradation_tables_text(degraded, 10.0)
        for kind in lib.kinds():
            assert text.count("\n%s:" % kind) == 1

    def test_dump_has_11x11_grid_per_kind(self, lib):
        degraded = DegradationAwareLibrary(lib, lifetimes=(10.0,))
        text = degradation_tables_text(degraded, 10.0)
        block = text.split("\nINV:")[1].split(":")[0]
        data_rows = [line for line in block.splitlines()
                     if line.strip().endswith(tuple("0123456789"))]
        # 11 stress rows, each with a label plus 11 multiplier columns.
        assert len(data_rows) == 11
        assert all(len(row.split()) == 12 for row in data_rows)

    def test_dump_grid_matches_table(self, lib):
        degraded = DegradationAwareLibrary(lib, lifetimes=(10.0,))
        text = degradation_tables_text(degraded, 10.0)
        block = text.split("\nNAND2:")[1].splitlines()
        last_row = [line for line in block
                    if line.strip().startswith("100%")][0]
        corner = float(last_row.split()[-1])
        assert corner == pytest.approx(
            degraded.multiplier("NAND2_X1", 1.0, 1.0, 10.0), abs=1e-4)
