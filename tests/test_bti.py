"""Unit and property tests for the BTI aging model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.aging import BTIModel, DEFAULT_BTI, SECONDS_PER_YEAR

stress_values = st.floats(min_value=0.0, max_value=1.0)
year_values = st.floats(min_value=0.0, max_value=30.0)


class TestDeltaVth:
    def test_fresh_silicon_has_no_shift(self):
        assert DEFAULT_BTI.delta_vth(1.0, 0.0) == 0.0
        assert DEFAULT_BTI.delta_vth(0.0, 10.0) == 0.0

    def test_shift_grows_with_time(self):
        d1 = DEFAULT_BTI.delta_vth(1.0, 1.0)
        d10 = DEFAULT_BTI.delta_vth(1.0, 10.0)
        assert 0 < d1 < d10

    def test_shift_grows_with_stress(self):
        half = DEFAULT_BTI.delta_vth(0.5, 10.0)
        full = DEFAULT_BTI.delta_vth(1.0, 10.0)
        assert 0 < half < full

    def test_power_law_exponents(self):
        model = DEFAULT_BTI
        ratio_t = (model.delta_vth(1.0, 10.0) / model.delta_vth(1.0, 1.0))
        assert ratio_t == pytest.approx(10 ** model.time_exponent)
        ratio_s = (model.delta_vth(1.0, 10.0) / model.delta_vth(0.25, 10.0))
        assert ratio_s == pytest.approx(4 ** model.stress_exponent)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DEFAULT_BTI.delta_vth(1.5, 1.0)
        with pytest.raises(ValueError):
            DEFAULT_BTI.delta_vth(-0.1, 1.0)
        with pytest.raises(ValueError):
            DEFAULT_BTI.delta_vth(1.0, -1.0)

    @given(stress=stress_values, years=year_values)
    def test_shift_never_negative(self, stress, years):
        assert DEFAULT_BTI.delta_vth(stress, years) >= 0.0

    @given(stress=stress_values, years=year_values)
    def test_shift_stays_below_overdrive_for_30_years(self, stress, years):
        # The calibration must never drive a device past cutoff within a
        # plausible lifetime.
        assert DEFAULT_BTI.delta_vth(stress, years) < DEFAULT_BTI.overdrive


class TestDelayMultiplier:
    def test_zero_shift_is_identity(self):
        assert DEFAULT_BTI.delay_multiplier_from_dvth(0.0) == 1.0

    def test_multiplier_exceeds_one_under_stress(self):
        assert DEFAULT_BTI.transistor_multiplier(1.0, 10.0) > 1.0

    def test_calibration_lands_in_paper_range(self):
        # Paper's Fig. 4: ~15-18% delay guardband after 10 years of
        # worst-case stress.
        m = DEFAULT_BTI.cell_multiplier(1.0, 1.0, 10.0)
        assert 1.10 < m < 1.25

    def test_one_year_worst_case_near_ten_percent(self):
        m = DEFAULT_BTI.cell_multiplier(1.0, 1.0, 1.0)
        assert 1.05 < m < 1.15

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_BTI.delay_multiplier_from_dvth(-0.01)

    def test_shift_beyond_overdrive_rejected(self):
        with pytest.raises(ValueError, match="overdrive"):
            DEFAULT_BTI.delay_multiplier_from_dvth(DEFAULT_BTI.overdrive)

    @given(stress=stress_values, years=year_values)
    def test_multiplier_at_least_one(self, stress, years):
        assert DEFAULT_BTI.transistor_multiplier(stress, years) >= 1.0

    @given(years=st.floats(min_value=0.1, max_value=30.0))
    def test_multiplier_monotone_in_stress(self, years):
        values = [DEFAULT_BTI.transistor_multiplier(s / 10.0, years)
                  for s in range(11)]
        assert values == sorted(values)

    def test_cell_multiplier_weights(self):
        # A pMOS-only cell under pMOS-only stress ages fully; an
        # nMOS-only cell under the same stress does not age at all.
        full = BTIModel().cell_multiplier(1.0, 0.0, 10.0, wp=1.0, wn=0.0)
        none = BTIModel().cell_multiplier(1.0, 0.0, 10.0, wp=0.0, wn=1.0)
        assert full > 1.0
        assert none == pytest.approx(1.0)

    def test_guardband_fraction(self):
        gb = DEFAULT_BTI.guardband_fraction(1.0, 10.0)
        assert gb == pytest.approx(
            DEFAULT_BTI.cell_multiplier(1.0, 1.0, 10.0) - 1.0)


class TestInversion:
    def test_years_until_dvth_inverts_delta_vth(self):
        target = DEFAULT_BTI.delta_vth(0.7, 5.0)
        years = DEFAULT_BTI.years_until_dvth(0.7, target)
        assert years == pytest.approx(5.0, rel=1e-6)

    def test_zero_target_is_immediate(self):
        assert DEFAULT_BTI.years_until_dvth(1.0, 0.0) == 0.0

    def test_unstressed_device_never_degrades(self):
        assert DEFAULT_BTI.years_until_dvth(0.0, 0.01) == math.inf


class TestCustomModels:
    def test_custom_exponent(self):
        slow = BTIModel(time_exponent=0.1)
        fast = BTIModel(time_exponent=0.3)
        # Beyond one second, a larger exponent accumulates more damage.
        assert slow.delta_vth(1.0, 10.0) < fast.delta_vth(1.0, 10.0)

    def test_seconds_per_year_constant(self):
        assert SECONDS_PER_YEAR == pytest.approx(365.25 * 24 * 3600)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_BTI.prefactor_v = 1.0
