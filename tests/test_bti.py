"""Unit and property tests for the BTI aging model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.aging import BTIModel, DEFAULT_BTI, SECONDS_PER_YEAR

stress_values = st.floats(min_value=0.0, max_value=1.0)
year_values = st.floats(min_value=0.0, max_value=30.0)


class TestDeltaVth:
    def test_fresh_silicon_has_no_shift(self):
        assert DEFAULT_BTI.delta_vth(1.0, 0.0) == 0.0
        assert DEFAULT_BTI.delta_vth(0.0, 10.0) == 0.0

    def test_shift_grows_with_time(self):
        d1 = DEFAULT_BTI.delta_vth(1.0, 1.0)
        d10 = DEFAULT_BTI.delta_vth(1.0, 10.0)
        assert 0 < d1 < d10

    def test_shift_grows_with_stress(self):
        half = DEFAULT_BTI.delta_vth(0.5, 10.0)
        full = DEFAULT_BTI.delta_vth(1.0, 10.0)
        assert 0 < half < full

    def test_power_law_exponents(self):
        model = DEFAULT_BTI
        ratio_t = (model.delta_vth(1.0, 10.0) / model.delta_vth(1.0, 1.0))
        assert ratio_t == pytest.approx(10 ** model.time_exponent)
        ratio_s = (model.delta_vth(1.0, 10.0) / model.delta_vth(0.25, 10.0))
        assert ratio_s == pytest.approx(4 ** model.stress_exponent)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DEFAULT_BTI.delta_vth(1.5, 1.0)
        with pytest.raises(ValueError):
            DEFAULT_BTI.delta_vth(-0.1, 1.0)
        with pytest.raises(ValueError):
            DEFAULT_BTI.delta_vth(1.0, -1.0)

    @given(stress=stress_values, years=year_values)
    def test_shift_never_negative(self, stress, years):
        assert DEFAULT_BTI.delta_vth(stress, years) >= 0.0

    @given(stress=stress_values, years=year_values)
    def test_shift_stays_below_overdrive_for_30_years(self, stress, years):
        # The calibration must never drive a device past cutoff within a
        # plausible lifetime.
        assert DEFAULT_BTI.delta_vth(stress, years) < DEFAULT_BTI.overdrive


class TestDelayMultiplier:
    def test_zero_shift_is_identity(self):
        assert DEFAULT_BTI.delay_multiplier_from_dvth(0.0) == 1.0

    def test_multiplier_exceeds_one_under_stress(self):
        assert DEFAULT_BTI.transistor_multiplier(1.0, 10.0) > 1.0

    def test_calibration_lands_in_paper_range(self):
        # Paper's Fig. 4: ~15-18% delay guardband after 10 years of
        # worst-case stress.
        m = DEFAULT_BTI.cell_multiplier(1.0, 1.0, 10.0)
        assert 1.10 < m < 1.25

    def test_one_year_worst_case_near_ten_percent(self):
        m = DEFAULT_BTI.cell_multiplier(1.0, 1.0, 1.0)
        assert 1.05 < m < 1.15

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_BTI.delay_multiplier_from_dvth(-0.01)

    def test_shift_beyond_overdrive_rejected(self):
        with pytest.raises(ValueError, match="overdrive"):
            DEFAULT_BTI.delay_multiplier_from_dvth(DEFAULT_BTI.overdrive)

    @given(stress=stress_values, years=year_values)
    def test_multiplier_at_least_one(self, stress, years):
        assert DEFAULT_BTI.transistor_multiplier(stress, years) >= 1.0

    @given(years=st.floats(min_value=0.1, max_value=30.0))
    def test_multiplier_monotone_in_stress(self, years):
        values = [DEFAULT_BTI.transistor_multiplier(s / 10.0, years)
                  for s in range(11)]
        assert values == sorted(values)

    def test_cell_multiplier_weights(self):
        # A pMOS-only cell under pMOS-only stress ages fully; an
        # nMOS-only cell under the same stress does not age at all.
        full = BTIModel().cell_multiplier(1.0, 0.0, 10.0, wp=1.0, wn=0.0)
        none = BTIModel().cell_multiplier(1.0, 0.0, 10.0, wp=0.0, wn=1.0)
        assert full > 1.0
        assert none == pytest.approx(1.0)

    def test_guardband_fraction(self):
        gb = DEFAULT_BTI.guardband_fraction(1.0, 10.0)
        assert gb == pytest.approx(
            DEFAULT_BTI.cell_multiplier(1.0, 1.0, 10.0) - 1.0)


class TestInversion:
    def test_years_until_dvth_inverts_delta_vth(self):
        target = DEFAULT_BTI.delta_vth(0.7, 5.0)
        years = DEFAULT_BTI.years_until_dvth(0.7, target)
        assert years == pytest.approx(5.0, rel=1e-6)

    def test_zero_target_is_immediate(self):
        assert DEFAULT_BTI.years_until_dvth(1.0, 0.0) == 0.0

    def test_unstressed_device_never_degrades(self):
        assert DEFAULT_BTI.years_until_dvth(0.0, 0.01) == math.inf


class TestCustomModels:
    def test_custom_exponent(self):
        slow = BTIModel(time_exponent=0.1)
        fast = BTIModel(time_exponent=0.3)
        # Beyond one second, a larger exponent accumulates more damage.
        assert slow.delta_vth(1.0, 10.0) < fast.delta_vth(1.0, 10.0)

    def test_seconds_per_year_constant(self):
        assert SECONDS_PER_YEAR == pytest.approx(365.25 * 24 * 3600)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_BTI.prefactor_v = 1.0


class TestArrayParity:
    """The ndarray-native paths must mirror the scalar ones exactly —
    values *and* every error path (satellite of the Monte Carlo PR)."""

    def test_delta_vth_elementwise_equals_scalar(self):
        stress = np.asarray([0.0, 0.25, 0.5, 1.0])
        years = np.asarray([0.0, 1.0, 10.0, 30.0])
        grid = DEFAULT_BTI.delta_vth(stress[:, None], years[None, :])
        assert grid.shape == (4, 4)
        for i, s in enumerate(stress):
            for j, y in enumerate(years):
                assert grid[i, j] == DEFAULT_BTI.delta_vth(
                    float(s), float(y))

    def test_zero_short_circuit_is_exact(self):
        # The scalar path returns a literal 0.0 for zero stress or
        # lifetime; the array path must too (0**0-style edge cases).
        out = DEFAULT_BTI.delta_vth(np.asarray([0.0, 1.0]),
                                    np.asarray([5.0, 0.0]))
        assert out[0] == 0.0 and out[1] == 0.0
        flat = BTIModel(time_exponent=0.0)
        assert flat.delta_vth(np.asarray([0.0]), np.asarray([3.0]))[0] \
            == 0.0

    def test_multiplier_elementwise_equals_scalar(self):
        dvth = np.linspace(0.0, 0.2, 9)
        arr = DEFAULT_BTI.delay_multiplier_from_dvth(dvth)
        for i, dv in enumerate(dvth):
            assert arr[i] == DEFAULT_BTI.delay_multiplier_from_dvth(
                float(dv))

    def test_cell_multiplier_broadcasts(self):
        sp = np.asarray([[0.2], [0.8]])
        years = np.asarray([1.0, 10.0])
        grid = DEFAULT_BTI.cell_multiplier(sp, 0.5, years, wp=0.7, wn=0.3)
        assert grid.shape == (2, 2)
        assert grid[1, 1] == DEFAULT_BTI.cell_multiplier(
            0.8, 0.5, 10.0, wp=0.7, wn=0.3)

    def test_stress_range_error_parity(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            DEFAULT_BTI.delta_vth(1.5, 1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            DEFAULT_BTI.delta_vth(np.asarray([0.5, 1.5]), 1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            DEFAULT_BTI.delta_vth(np.asarray([-0.1, 0.5]), 1.0)

    def test_lifetime_error_parity(self):
        with pytest.raises(ValueError, match="non-negative"):
            DEFAULT_BTI.delta_vth(1.0, -1.0)
        with pytest.raises(ValueError, match="non-negative"):
            DEFAULT_BTI.delta_vth(1.0, np.asarray([1.0, -1.0]))

    def test_negative_dvth_error_parity(self):
        with pytest.raises(ValueError, match="non-negative"):
            DEFAULT_BTI.delay_multiplier_from_dvth(-0.01)
        with pytest.raises(ValueError, match="non-negative"):
            DEFAULT_BTI.delay_multiplier_from_dvth(
                np.asarray([0.1, -0.01]))

    def test_allow_speedup_permits_negative_draws(self):
        fast = DEFAULT_BTI.delay_multiplier_from_dvth(
            -0.05, allow_speedup=True)
        assert fast < 1.0
        arr = DEFAULT_BTI.delay_multiplier_from_dvth(
            np.asarray([-0.05, 0.0, 0.05]), allow_speedup=True)
        assert arr[0] == fast and arr[1] == 1.0 and arr[2] > 1.0

    def test_overdrive_error_parity_even_with_speedup(self):
        # allow_speedup relaxes the sign check, never the headroom one.
        with pytest.raises(ValueError, match="overdrive"):
            DEFAULT_BTI.delay_multiplier_from_dvth(
                DEFAULT_BTI.overdrive, allow_speedup=True)
        with pytest.raises(ValueError, match="overdrive"):
            DEFAULT_BTI.delay_multiplier_from_dvth(
                np.asarray([0.1, DEFAULT_BTI.overdrive]),
                allow_speedup=True)

    @given(stress=stress_values, years=year_values)
    def test_scalar_path_taken_for_scalars(self, stress, years):
        # np.float64 0-d inputs count as scalars and return floats.
        out = DEFAULT_BTI.delta_vth(np.float64(stress), np.float64(years))
        assert isinstance(out, float)
        assert out == DEFAULT_BTI.delta_vth(stress, years)
