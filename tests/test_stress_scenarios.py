"""Tests for stress annotations and aging scenarios."""

import pytest

from repro.aging import (ActualStress, BALANCE, NONE, WORST, AgingScenario,
                         balance_case, fresh, stress_histogram, worst_case)
from repro.netlist import NetlistBuilder


def tiny_netlist():
    builder = NetlistBuilder(name="tiny")
    a, b = builder.inputs(2, "x")
    out = builder.and2(a, b)
    return builder.outputs([out])


class TestUniformStress:
    def test_worst_is_full_stress(self):
        assert WORST.gate_stress(object()) == (1.0, 1.0)

    def test_balance_is_half_stress(self):
        assert BALANCE.gate_stress(object()) == (0.5, 0.5)

    def test_none_is_zero(self):
        assert NONE.gate_stress(object()) == (0.0, 0.0)


class TestActualStress:
    def test_from_signal_probabilities(self):
        net = tiny_netlist()
        a, b = net.primary_inputs
        gate = net.gates[0]
        probs = {a: 1.0, b: 0.5, gate.output: 0.5}
        ann = ActualStress.from_signal_probabilities(net, probs)
        sp, sn = ann.gate_stress(gate)
        # mean input p1 = 0.75 -> nMOS stress 0.75, pMOS 0.25
        assert sn == pytest.approx(0.75)
        assert sp == pytest.approx(0.25)

    def test_constants_have_implied_probabilities(self):
        from repro.netlist import CONST1
        builder = NetlistBuilder(name="c")
        a = builder.inputs(1, "a")[0]
        out = builder.netlist.add_gate("AND2_X1", (a, CONST1))
        net = builder.outputs([out])
        ann = ActualStress.from_signal_probabilities(net, {a: 0.0})
        sp, sn = ann.gate_stress(net.gates[0])
        assert sn == pytest.approx(0.5)   # mean of 0.0 and 1.0

    def test_missing_gate_uses_default(self):
        ann = ActualStress(per_gate={}, label="x")

        class FakeGate:
            uid = 123
        assert ann.gate_stress(FakeGate()) == (0.5, 0.5)

    def test_stress_samples_flatten_both_networks(self):
        ann = ActualStress(per_gate={0: (0.2, 0.8), 1: (0.4, 0.6)})
        samples = sorted(ann.stress_samples())
        assert samples == [0.2, 0.4, 0.6, 0.8]

    def test_histogram_covers_unit_interval(self):
        ann = ActualStress(per_gate={i: (i / 10.0, 1 - i / 10.0)
                                     for i in range(11)})
        edges, counts = stress_histogram(ann, bins=10)
        assert len(edges) == 11
        assert counts.sum() == 22
        assert edges[0] == 0.0 and edges[-1] == 1.0


class TestScenarios:
    def test_labels(self):
        assert worst_case(10).label == "10y_worst"
        assert balance_case(1).label == "1y_balance"
        assert fresh().label == "fresh"
        assert worst_case(0.5).label == "0.5y_worst"

    def test_fresh_flag(self):
        assert fresh().is_fresh
        assert not worst_case(1).is_fresh

    def test_gate_stress_delegates(self):
        scenario = AgingScenario(10.0, BALANCE)
        assert scenario.gate_stress(object()) == (0.5, 0.5)

    def test_str_is_label(self):
        assert str(worst_case(3)) == "3y_worst"

    def test_actual_scenario_label(self):
        ann = ActualStress(per_gate={}, label="idct")
        scenario = AgingScenario(10.0, ann)
        assert scenario.label == "10y_idct"
