"""Tests for the metric time-series recorder (repro.obs.timeseries).

Covers ring-buffer sampling (cumulative counters, derived per-second
rates, histogram buckets and quantiles), capacity eviction with the
``obs.ts.dropped`` counter, windowed reads, the JSONL journal, the
background sampling thread, and exact agreement between final-sample
quantiles and ``Histogram.quantile`` — the cross-check the serve
benchmark relies on.
"""

import json
import time

from repro.obs import metrics as obs_metrics
from repro.obs.timeseries import TS_SCHEMA, TimeSeriesRecorder


def make_registry():
    reg = obs_metrics.MetricsRegistry()
    reg.counter(obs_metrics.SERVE_REQUESTS).inc(10)
    reg.gauge(obs_metrics.SERVE_QUEUE_DEPTH).set(3.0)
    hist = reg.histogram(obs_metrics.SERVE_LATENCY_MS)
    for value in (0.5, 2.0, 8.0, 120.0):
        hist.observe(value)
    return reg


class TestSampling:
    def test_sample_shape(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(registry=reg)
        sample = rec.sample_now()
        assert sample["schema"] == TS_SCHEMA
        assert sample["counters"][obs_metrics.SERVE_REQUESTS] == 10
        assert sample["gauges"][obs_metrics.SERVE_QUEUE_DEPTH] == 3.0
        hist = sample["histograms"][obs_metrics.SERVE_LATENCY_MS]
        assert hist["count"] == 4
        assert sum(hist["buckets"]) == 4
        quantiles = sample["quantiles"][obs_metrics.SERVE_LATENCY_MS]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]
        assert len(rec) == 1 and rec.latest() is sample

    def test_rates_derive_from_counter_deltas(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(registry=reg)
        first = rec.sample_now()
        assert first["rates"] == {}  # no previous sample to diff
        reg.counter(obs_metrics.SERVE_REQUESTS).inc(20)
        time.sleep(0.02)
        second = rec.sample_now()
        rate = second["rates"][obs_metrics.SERVE_REQUESTS]
        assert rate > 0
        elapsed = second["t"] - first["t"]
        assert rate * elapsed == 20  # exactly the delta, scaled back

    def test_final_sample_quantiles_match_histogram_exactly(self):
        # The acceptance cross-check: the time-series read path must be
        # bit-identical to Histogram.quantile on the same data.
        reg = make_registry()
        rec = TimeSeriesRecorder(registry=reg)
        sample = rec.sample_now()
        hist = reg.get(obs_metrics.SERVE_LATENCY_MS)
        quantiles = sample["quantiles"][obs_metrics.SERVE_LATENCY_MS]
        assert quantiles["p50"] == hist.quantile(0.50)
        assert quantiles["p95"] == hist.quantile(0.95)
        assert quantiles["p99"] == hist.quantile(0.99)

    def test_ring_evicts_and_counts_drops(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(registry=reg, capacity=3)
        for __ in range(5):
            rec.sample_now()
        assert len(rec) == 3
        assert rec.dropped() == 2
        assert reg.value(obs_metrics.OBS_TS_SAMPLES) == 5
        assert reg.value(obs_metrics.OBS_TS_DROPPED) == 2
        times = [s["t"] for s in rec.samples()]
        assert times == sorted(times)  # oldest evicted first

    def test_windowed_read(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(registry=reg)
        old = rec.sample_now()
        old["t"] -= 100.0  # backdate: outside any small window
        rec.sample_now()
        rec.sample_now()
        assert len(rec.samples()) == 3
        assert len(rec.samples(window_s=50.0)) == 2
        assert all(s["t"] > time.time() - 50.0
                   for s in rec.samples(window_s=50.0))


class TestJournal:
    def test_flush_appends_jsonl(self, tmp_path):
        path = str(tmp_path / "ts.jsonl")
        reg = make_registry()
        rec = TimeSeriesRecorder(registry=reg, jsonl_path=path)
        rec.sample_now()
        rec.sample_now()
        rec.flush()
        rec.sample_now()
        rec.flush()
        rec.flush()  # nothing new: no extra lines
        with open(path) as handle:
            rows = [json.loads(line) for line in handle]
        assert len(rows) == 3
        assert all(row["schema"] == TS_SCHEMA for row in rows)
        assert [row["t"] for row in rows] == \
            sorted(row["t"] for row in rows)
        assert reg.value(obs_metrics.OBS_TS_FLUSHES) >= 2

    def test_no_journal_flush_is_noop(self):
        rec = TimeSeriesRecorder(registry=make_registry())
        rec.sample_now()
        rec.flush()  # must not raise without a jsonl_path


class TestBackgroundThread:
    def test_start_stop_takes_final_sample(self, tmp_path):
        path = str(tmp_path / "ts.jsonl")
        reg = make_registry()
        rec = TimeSeriesRecorder(registry=reg, interval=0.01,
                                 jsonl_path=path)
        rec.start()
        deadline = time.time() + 5.0
        while len(rec) < 2 and time.time() < deadline:
            time.sleep(0.01)
        reg.counter(obs_metrics.SERVE_REQUESTS).inc(5)
        rec.stop(final_sample=True)
        assert len(rec) >= 2
        # The final sample observed the very last counter increment and
        # was flushed to the journal before stop() returned.
        assert rec.latest()["counters"][obs_metrics.SERVE_REQUESTS] == 15
        with open(path) as handle:
            last = json.loads(handle.readlines()[-1])
        assert last["counters"][obs_metrics.SERVE_REQUESTS] == 15

    def test_stop_is_idempotent(self):
        rec = TimeSeriesRecorder(registry=make_registry(), interval=0.01)
        rec.start()
        rec.stop()
        rec.stop()
