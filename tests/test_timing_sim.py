"""Tests for the vectorized timed simulator (timing-error model)."""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.rtl import Adder, KoggeStoneAdder, Multiplier
from repro.sim import TimedSimulator, int_to_bits, max_frequency_ghz
from repro.sta import analyze, critical_path_delay
from repro.synth import synthesize_netlist


def make_sim(lib, netlist, t_clock=None, scenario=None):
    if t_clock is None:
        t_clock = critical_path_delay(netlist, lib)
    return TimedSimulator(netlist, lib, t_clock, scenario=scenario)


def operand_bits(component, operands):
    parts = [int_to_bits(np.asarray(v), w)
             for v, w in zip(operands, component.operand_widths)]
    return np.concatenate(parts, axis=1)


class TestFreshBehaviour:
    def test_fresh_at_own_clock_never_violates(self, lib, adder8,
                                               adder8_component, rng):
        sim = make_sim(lib, adder8)
        a, b = adder8_component.random_operands(2000, rng=rng)
        result = sim.run_stream(operand_bits(adder8_component, (a, b)))
        assert not result.violations.any()
        assert result.error_rate == 0.0

    def test_settled_matches_functional(self, lib, adder8,
                                        adder8_component, rng):
        sim = make_sim(lib, adder8)
        a, b = adder8_component.random_operands(500, rng=rng)
        result = sim.run_stream(operand_bits(adder8_component, (a, b)))
        from repro.sim import bits_to_int
        assert np.array_equal(bits_to_int(result.settled),
                              adder8_component.exact(a, b))

    def test_generous_clock_samples_settled(self, lib, adder8,
                                            adder8_component, rng):
        sim = make_sim(lib, adder8, t_clock=1e6, scenario=worst_case(10))
        a, b = adder8_component.random_operands(500, rng=rng)
        result = sim.run_stream(operand_bits(adder8_component, (a, b)))
        assert np.array_equal(result.sampled, result.settled)

    def test_no_transition_means_zero_arrival(self, lib, adder8,
                                              adder8_component):
        sim = make_sim(lib, adder8)
        bits = operand_bits(adder8_component,
                            (np.array([5, 5]), np.array([3, 3])))
        result = sim.run_bits(bits, bits)
        assert result.arrivals.max() == 0.0


class TestArrivalBounds:
    def test_dynamic_bounded_by_static(self, lib, rng):
        """Property: dynamic arrivals never exceed aging-aware STA."""
        for component in (Adder(8), Multiplier(6)):
            net = synthesize_netlist(component, lib, effort="high")
            scenario = worst_case(10)
            report = analyze(net, lib, scenario=scenario)
            sim = TimedSimulator(net, lib, report.critical_path_ps,
                                 scenario=scenario)
            ops = component.random_operands(1000, rng=rng)
            result = sim.run_stream(operand_bits(component, ops))
            static = np.array([report.arrivals[n]
                               for n in net.primary_outputs])
            assert (result.arrivals <= static[None, :] + 1e-3).all()

    def test_aging_increases_arrivals(self, lib, adder8,
                                      adder8_component, rng):
        a, b = adder8_component.random_operands(500, rng=rng)
        bits = operand_bits(adder8_component, (a, b))
        fresh = make_sim(lib, adder8).run_stream(bits)
        aged = make_sim(lib, adder8,
                        scenario=worst_case(10)).run_stream(bits)
        moved = fresh.arrivals > 0
        assert (aged.arrivals[moved] > fresh.arrivals[moved]).all()

    def test_arrival_scale_matches_aging_multiplier(self, lib, adder8,
                                                    adder8_component, rng):
        from repro.aging import DEFAULT_BTI
        a, b = adder8_component.random_operands(300, rng=rng)
        bits = operand_bits(adder8_component, (a, b))
        fresh = make_sim(lib, adder8).run_stream(bits)
        aged = make_sim(lib, adder8,
                        scenario=worst_case(10)).run_stream(bits)
        mult = DEFAULT_BTI.cell_multiplier(1, 1, 10)
        moved = fresh.arrivals > 1.0
        ratio = aged.arrivals[moved] / fresh.arrivals[moved]
        assert ratio.min() > 1.0
        assert ratio.max() < mult * 1.05


class TestTimingErrors:
    def test_aged_prefix_adder_errs_at_fresh_clock(self, lib, rng):
        component = KoggeStoneAdder(32)
        net = synthesize_netlist(component, lib, effort="ultra")
        t_clock = critical_path_delay(net, lib)
        sim = TimedSimulator(net, lib, t_clock, scenario=worst_case(10))
        a, b = component.random_operands(4000, rng=rng)
        result = sim.run_stream(operand_bits(component, (a, b)))
        assert result.error_rate > 0.01

    def test_errors_monotone_in_lifetime(self, lib, rng):
        component = KoggeStoneAdder(32)
        net = synthesize_netlist(component, lib, effort="ultra")
        t_clock = critical_path_delay(net, lib)
        a, b = component.random_operands(4000, rng=rng)
        bits = operand_bits(component, (a, b))
        rates = []
        for years in (1, 10):
            sim = TimedSimulator(net, lib, t_clock,
                                 scenario=worst_case(years))
            rates.append(sim.run_stream(bits).error_rate)
        assert rates[0] <= rates[1]

    def test_sampled_differs_only_on_late_changed_bits(self, lib, rng):
        component = KoggeStoneAdder(32)
        net = synthesize_netlist(component, lib, effort="ultra")
        t_clock = critical_path_delay(net, lib)
        sim = TimedSimulator(net, lib, t_clock, scenario=worst_case(10))
        a, b = component.random_operands(2000, rng=rng)
        result = sim.run_stream(operand_bits(component, (a, b)))
        wrong = result.sampled != result.settled
        assert (wrong <= result.violations).all()


class TestBatching:
    def test_batched_equals_unbatched(self, lib, adder8,
                                      adder8_component, rng):
        a, b = adder8_component.random_operands(300, rng=rng)
        bits = operand_bits(adder8_component, (a, b))
        big = TimedSimulator(adder8, lib, 50.0, scenario=worst_case(10),
                             max_batch=1 << 20).run_stream(bits)
        small = TimedSimulator(adder8, lib, 50.0, scenario=worst_case(10),
                               max_batch=64).run_stream(bits)
        assert np.array_equal(big.sampled, small.sampled)
        assert np.allclose(big.arrivals, small.arrivals)

    def test_shape_mismatch_rejected(self, lib, adder8):
        sim = make_sim(lib, adder8)
        with pytest.raises(ValueError):
            sim.run_bits(np.zeros((3, 16), dtype=np.uint8),
                         np.zeros((4, 16), dtype=np.uint8))


def test_max_frequency_conversion():
    assert max_frequency_ghz(1000.0) == pytest.approx(1.0)
    assert max_frequency_ghz(500.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        max_frequency_ghz(0.0)
