"""Tests for the statistical timing-fault injection campaigns.

Covers the Bernoulli mask sampler (threshold semantics, determinism,
monotone nesting), faultload derivation (zero at the fresh corner and
at the guardbanded clock), the packed/scalar injectors, campaign
reproducibility and monotone ladders, the comparison arms, the
``repro inject`` CLI, the report renderer, and the ``inject.*``
observability metrics.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.inject import (CampaignSpec, DEFAULT_ACTIVITY, build_faultload,
                          run_campaign)
from repro.inject.campaign import component_spec, make_point_tasks
from repro.inject.inject_sim import (check_alignment, count_mask_bits,
                                     evaluate_bytes_injected,
                                     evaluate_packed_injected,
                                     unpack_op_masks)
from repro.inject.masks import (CHUNK_WORDS, PROB_BITS, PROB_ONE,
                                bernoulli_words, flip_threshold, gate_stream)
from repro.core.specs import SpecError, parse_scenario
from repro.obs import metrics as obs_metrics
from repro.report import inject_report_text
from repro.rtl import Adder, Multiplier
from repro.sim import bitpack
from repro.sim.logic import compile_netlist, evaluate_packed
from repro.sta.engine import analyze_batch, compile_timing


def row_at(result, scenario, clock_scale):
    for row in result.rows:
        if row["scenario"] == scenario and row["clock_scale"] == clock_scale:
            return row
    raise KeyError((scenario, clock_scale))


@pytest.fixture(scope="module")
def adder_campaign():
    spec = CampaignSpec(component="adder8",
                        scenarios=("fresh", "worst1y", "worst10y"),
                        clock_scales=(1.0, 0.95), vectors=512, seed=7,
                        effort="high")
    return spec, run_campaign(spec)


class TestMasks:
    def test_threshold_edges(self):
        assert flip_threshold(0.0) == 0
        assert flip_threshold(1.0) == PROB_ONE
        assert flip_threshold(-0.5) == 0
        assert flip_threshold(2.0) == PROB_ONE
        # ceil: any strictly positive probability flips at least one
        # lane value out of 2**PROB_BITS.
        assert flip_threshold(1e-12) == 1
        assert flip_threshold(0.5) == PROB_ONE // 2

    def test_degenerate_masks(self):
        zeros = bernoulli_words(3, 17, 0, 16)
        assert zeros.dtype == np.uint64 and not zeros.any()
        ones = bernoulli_words(3, 17, PROB_ONE, 16)
        assert (ones == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_density_tracks_probability(self):
        words = 4096
        for p in (0.1, 0.5, 0.9):
            mask = bernoulli_words(11, 5, flip_threshold(p), words)
            density = int(np.bitwise_count(mask).sum()) / (64 * words)
            assert abs(density - p) < 0.01

    def test_deterministic_and_seed_sensitive(self):
        t = flip_threshold(0.3)
        a = bernoulli_words(42, 9, t, 64)
        b = bernoulli_words(42, 9, t, 64)
        assert (a == b).all()
        assert (a != bernoulli_words(43, 9, t, 64)).any()
        assert (a != bernoulli_words(42, 10, t, 64)).any()

    def test_prefix_stability_across_chunks(self):
        # Asking for fewer words must yield a prefix of the longer
        # stream, including across the chunk boundary.
        t = flip_threshold(0.4)
        long = bernoulli_words(5, 2, t, CHUNK_WORDS + 32)
        short = bernoulli_words(5, 2, t, 48)
        assert (long[:48] == short).all()

    def test_monotone_nesting(self):
        # T1 <= T2 over the same (seed, gate) stream => mask1 is a
        # subset of mask2 bit for bit. This is what makes the campaign
        # ladders exactly monotone.
        t1, t2 = flip_threshold(0.2), flip_threshold(0.6)
        m1 = bernoulli_words(13, 4, t1, 256)
        m2 = bernoulli_words(13, 4, t2, 256)
        assert not (m1 & ~m2).any()

    def test_gate_stream_is_philox_counter_based(self):
        rng = gate_stream(1, 2, 3)
        assert isinstance(rng.bit_generator, np.random.Philox)


class TestFaultload:
    def test_fresh_corner_is_exactly_empty(self, lib, adder8):
        program = compile_timing(adder8, lib)
        batch = analyze_batch(adder8, lib,
                              [parse_scenario("fresh"),
                               parse_scenario("worst10y")], program=program)
        clock = float(batch.critical_path_ps[0])
        load = build_faultload(program, batch, "fresh", clock)
        assert load.n_violating == 0
        assert load.masks(7, 8) == {}
        aged = build_faultload(program, batch, "10y_worst", clock)
        assert aged.n_violating > 0
        assert 0.0 < aged.mean_flip_probability <= DEFAULT_ACTIVITY

    def test_flip_probability_bounded_by_activity(self, lib, adder8):
        program = compile_timing(adder8, lib)
        batch = analyze_batch(adder8, lib, [parse_scenario("worst10y")],
                              program=program)
        clock = 0.9 * float(batch.critical_path_ps[0])
        load = build_faultload(program, batch, "10y_worst", clock,
                               activity=0.25)
        assert load.n_violating > 0
        assert (load.flip_probability > 0).all()
        assert (load.flip_probability <= 0.25).all()
        assert (load.arrival_ps > clock).all()

    def test_validation(self, lib, adder8):
        program = compile_timing(adder8, lib)
        batch = analyze_batch(adder8, lib, [parse_scenario("fresh")],
                              program=program)
        with pytest.raises(ValueError):
            build_faultload(program, batch, "fresh", -1.0)
        with pytest.raises(ValueError):
            build_faultload(program, batch, "fresh", 100.0, activity=0.0)
        with pytest.raises(KeyError):
            build_faultload(program, batch, "10y_worst", 100.0)


class TestInjectedEval:
    def test_empty_masks_match_clean(self, lib, adder8, rng):
        compiled = compile_netlist(adder8, lib)
        program = compile_timing(adder8, lib)
        check_alignment(compiled, program)
        vectors = 200
        pi_bits = rng.integers(0, 2, size=(vectors, len(
            adder8.primary_inputs)), dtype=np.uint8)
        assert (evaluate_packed_injected(compiled, pi_bits, {})
                == evaluate_packed(compiled, pi_bits)).all()

    def test_packed_matches_scalar_reference(self, lib, adder8, rng):
        compiled = compile_netlist(adder8, lib)
        vectors = 300
        words = bitpack.word_count(vectors)
        pi_bits = rng.integers(0, 2, size=(vectors, len(
            adder8.primary_inputs)), dtype=np.uint8)
        op_masks = {row: bernoulli_words(3, row, flip_threshold(0.2), words)
                    for row in range(0, len(compiled.ops), 3)}
        packed = evaluate_packed_injected(compiled, pi_bits, op_masks)
        scalar = evaluate_bytes_injected(
            compiled, pi_bits, unpack_op_masks(op_masks, vectors))
        assert (packed == scalar).all()
        injected, faulted = count_mask_bits(op_masks, vectors)
        assert 0 < faulted <= vectors
        assert injected >= faulted

    def test_count_mask_bits_ignores_tail(self):
        mask = np.full(2, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        injected, faulted = count_mask_bits({0: mask}, 70)
        assert injected == 70 and faulted == 70


class TestCampaign:
    def test_spec_validation(self):
        with pytest.raises(SpecError):
            CampaignSpec(component="adder8", scenarios=()).validated()
        with pytest.raises(SpecError):
            CampaignSpec(component="adder8", clock_scales=(5.0,)).validated()
        with pytest.raises(SpecError):
            CampaignSpec(component="adder8", vectors=0).validated()
        with pytest.raises(SpecError):
            CampaignSpec(component="adder8", activity=1.5).validated()
        with pytest.raises(SpecError):
            CampaignSpec(component="adder8", stimulus="bogus").validated()
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"component": "adder8", "bogus": 1})
        spec = CampaignSpec(component="adder8")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec.validated()

    def test_component_spec_round_trips(self):
        assert component_spec(Adder(8)) == "adder"
        assert component_spec(Multiplier(6)) == "multiplier"
        with pytest.raises(SpecError):
            component_spec(object())

    def test_task_order_is_scenario_major(self):
        spec = CampaignSpec(component="adder8",
                            scenarios=("fresh", "worst10y"),
                            clock_scales=(1.0, 0.9)).validated()
        tasks = make_point_tasks(spec)
        assert [(t["scenario"], t["clock_scale"]) for t in tasks] == [
            ("fresh", 1.0), ("fresh", 0.9),
            ("10y_worst", 1.0), ("10y_worst", 0.9)]

    def test_fresh_row_has_zero_faults(self, adder_campaign):
        __spec, result = adder_campaign
        fresh = row_at(result, "fresh", 1.0)
        assert fresh["violating_gates"] == 0
        assert fresh["injected_faults"] == 0
        assert fresh["word_error_rate"] == 0.0
        assert fresh["psnr_db"] == float("inf")

    def test_ladder_monotone_in_lifetime_and_clock(self, adder_campaign):
        __spec, result = adder_campaign
        for scale in (1.0, 0.95):
            ladder = [row_at(result, s, scale)
                      for s in ("fresh", "1y_worst", "10y_worst")]
            for a, b in zip(ladder, ladder[1:]):
                assert a["injected_faults"] <= b["injected_faults"]
                assert a["faulted_vectors"] <= b["faulted_vectors"]
        for label in ("1y_worst", "10y_worst"):
            assert (row_at(result, label, 1.0)["injected_faults"]
                    <= row_at(result, label, 0.95)["injected_faults"])
        assert row_at(result, "10y_worst", 0.95)["injected_faults"] > 0

    def test_bit_reproducible(self, adder_campaign):
        spec, result = adder_campaign
        again = run_campaign(spec)
        assert again.to_dict() == result.to_dict()

    def test_to_dict_json_round_trip(self, adder_campaign):
        __spec, result = adder_campaign
        data = result.to_dict()
        assert data["schema"] == "repro.inject/1"
        assert json.loads(json.dumps(data)) == data

    def test_arms(self, adder_campaign):
        __spec, result = adder_campaign
        assert {e["scenario"] for e in result.approximation} \
            == {"1y_worst", "10y_worst"}
        for entry in result.approximation:
            if entry["feasible"]:
                assert entry["aged_cp_ps"] <= entry["clock_ps"]
                assert 1 <= entry["precision"] <= 8
        for entry in result.guardbanded:
            assert entry["violating_gates"] == 0
            assert entry["injected_faults"] == 0
            assert entry["clock_penalty_pct"] > 0.0
            assert entry["clock_ps"] > result.fresh_clock_ps

    def test_metrics_emitted(self):
        spec = CampaignSpec(component="adder8", scenarios=("worst10y",),
                            clock_scales=(0.9,), vectors=128, seed=3,
                            effort="high")
        with obs_metrics.scoped() as registry:
            run_campaign(spec)
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters[obs_metrics.INJECT_CAMPAIGNS] == 1
        assert counters[obs_metrics.INJECT_POINTS] == 1
        assert counters[obs_metrics.INJECT_VECTORS] == 128
        assert counters[obs_metrics.INJECT_FAULTS] > 0
        assert obs_metrics.INJECT_VIOLATING_FRACTION \
            in snapshot["histograms"]


@pytest.mark.verify
def test_injection_invariants_adder(assert_injection_invariants):
    results = assert_injection_invariants(Adder(8), effort="high",
                                          vectors=256)
    assert {r.name for r in results} == {
        "inject_zero_fresh_faults", "inject_zero_when_guardbanded",
        "inject_faults_monotone_in_lifetime",
        "inject_faults_monotone_in_clock",
        "inject_packed_matches_reference"}


class TestReportAndCli:
    def test_report_text(self, adder_campaign):
        __spec, result = adder_campaign
        text = inject_report_text(result)
        assert "guardband-free + faults" in text
        assert "aging-induced approximation" in text
        assert "guardbanded" in text
        assert "10y_worst" in text

    def test_cli_inject(self, capsys, tmp_path):
        out = tmp_path / "campaign.json"
        rc = cli.main(["inject", "--component", "adder8", "--years", "1,10",
                       "--vectors", "256", "--clocks", "1.0,0.95",
                       "--seed", "7", "--effort", "high",
                       "--output", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "guardband-free + faults" in stdout
        data = json.loads(out.read_text())
        assert data["schema"] == "repro.inject/1"
        assert data["spec"]["seed"] == 7
        labels = [r["scenario"] for r in data["rows"]]
        assert labels[0] == "fresh" and "10y_worst" in labels

    def test_cli_rejects_bad_spec(self, capsys):
        rc = cli.main(["inject", "--component", "adder8",
                       "--clocks", "9.0"])
        assert rc != 0
        assert "clock scales" in capsys.readouterr().err
