"""Tests for declarative SLOs and burn-rate evaluation (repro.obs.slo).

Covers the ``--slo`` spec grammar, the windowed bucket-delta math
(``fraction_under``), burn-rate computation against synthetic
time-series trajectories, breach-transition counting, and the
``serve.slo.*`` gauges the server surfaces.
"""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.slo import (DEFAULT_SLOS, DEFAULT_WINDOW_S, INFINITE_BURN,
                           SLO, SLOEvaluator, fraction_under, parse_slo)
from repro.obs.timeseries import TimeSeriesRecorder


class TestParseSLO:
    def test_latency_spec(self):
        slo = parse_slo("latency:p99:250")
        assert slo.kind == "latency"
        assert slo.good_target == pytest.approx(0.99)
        assert slo.threshold_ms == 250.0
        assert slo.window_s == DEFAULT_WINDOW_S
        assert slo.budget == pytest.approx(0.01)

    def test_latency_spec_with_window(self):
        slo = parse_slo("latency:p95:50:30")
        assert slo.good_target == pytest.approx(0.95)
        assert slo.threshold_ms == 50.0 and slo.window_s == 30.0

    def test_errors_spec(self):
        slo = parse_slo("errors:99.9")
        assert slo.kind == "errors"
        assert slo.good_target == pytest.approx(0.999)
        assert slo.budget == pytest.approx(0.001)

    def test_errors_spec_with_window(self):
        assert parse_slo("errors:99:300").window_s == 300.0

    @pytest.mark.parametrize("spec", [
        "", "latency", "latency:p99", "latency:99:250",
        "latency:p99:0", "latency:p99:abc", "latency:p200:250",
        "errors", "errors:abc", "errors:0", "errors:100",
        "uptime:99", "latency:p99:250:60:7",
    ])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError, match="SLO"):
            parse_slo(spec)

    def test_defaults_parse(self):
        objectives = [parse_slo(spec) for spec in DEFAULT_SLOS]
        assert {slo.kind for slo in objectives} == {"latency", "errors"}


class TestFractionUnder:
    BOUNDS = (1.0, 10.0, 100.0)

    def test_empty_is_none(self):
        assert fraction_under(self.BOUNDS, [0, 0, 0, 0], 50.0) is None

    def test_all_under(self):
        assert fraction_under(self.BOUNDS, [4, 0, 0, 0], 1.0) == \
            pytest.approx(1.0)

    def test_interpolates_inside_bucket(self):
        # 10 observations uniformly assumed in (10, 100]; threshold 55
        # cuts the bucket at (55-10)/90 = 0.5.
        assert fraction_under(self.BOUNDS, [0, 0, 10, 0], 55.0) == \
            pytest.approx(0.5)

    def test_overflow_bucket_counts_as_above(self):
        assert fraction_under(self.BOUNDS, [0, 0, 0, 5], 1e6) == \
            pytest.approx(0.0)
        assert fraction_under(self.BOUNDS, [5, 0, 0, 5], 5.0) == \
            pytest.approx(0.5)


def trajectory(latencies_then_latencies, errors=(0, 0), requests=None):
    """A recorder holding two samples: observe the first latency batch,
    sample, observe the second batch, sample again."""
    reg = obs_metrics.MetricsRegistry()
    rec = TimeSeriesRecorder(registry=reg)
    hist = reg.histogram(obs_metrics.SERVE_LATENCY_MS)
    first, second = latencies_then_latencies
    total = requests or (len(first) + len(second))
    for value in first:
        hist.observe(value)
    reg.counter(obs_metrics.SERVE_REQUESTS).inc(len(first))
    reg.counter(obs_metrics.SERVE_ERRORS).inc(errors[0])
    rec.sample_now()
    for value in second:
        hist.observe(value)
    reg.counter(obs_metrics.SERVE_REQUESTS).inc(total - len(first))
    reg.counter(obs_metrics.SERVE_ERRORS).inc(errors[1] - errors[0])
    rec.sample_now()
    return reg, rec


class TestLatencyBurnRate:
    def test_within_budget(self):
        # Window delta: 99 fast + 0 slow of 99 -> no budget spent.
        reg, rec = trajectory(([500.0], [1.0] * 50))
        slo = parse_slo("latency:p50:100")
        evaluator = SLOEvaluator([slo], rec, registry=reg)
        (result,) = evaluator.evaluate()
        # The 500ms pre-window observation is delta'd away.
        assert result["events"] == 50
        assert result["bad_fraction"] == pytest.approx(0.0)
        assert result["burn_rate"] == pytest.approx(0.0)
        assert result["ok"] is True

    def test_breach_and_gauges(self):
        # Half the window's requests are slow against a p99 objective:
        # burn explodes far past 1.0.
        reg, rec = trajectory(([], [1.0] * 10 + [5000.0] * 10))
        slo = parse_slo("latency:p99:100")
        evaluator = SLOEvaluator([slo], rec, registry=reg)
        (result,) = evaluator.evaluate()
        assert result["ok"] is False
        assert result["burn_rate"] > 1.0
        assert result["observed_quantile_ms"] > 100.0
        gauge = "%s.%s" % (obs_metrics.SERVE_SLO_BURN_RATE, slo.name)
        assert reg.value(gauge) == result["burn_rate"]
        assert reg.value(obs_metrics.SERVE_SLO_WORST) == \
            result["burn_rate"]
        assert reg.value(obs_metrics.SERVE_SLO_BREACHES) == 1

    def test_breach_counted_once_per_transition(self):
        reg, rec = trajectory(([], [5000.0] * 20))
        evaluator = SLOEvaluator([parse_slo("latency:p99:100")], rec,
                                 registry=reg)
        evaluator.evaluate()
        evaluator.evaluate()  # still breached: no second transition
        assert reg.value(obs_metrics.SERVE_SLO_BREACHES) == 1

    def test_not_enough_history_is_vacuously_ok(self):
        reg = obs_metrics.MetricsRegistry()
        rec = TimeSeriesRecorder(registry=reg)
        rec.sample_now()  # single sample: no window to diff
        evaluator = SLOEvaluator([parse_slo("latency:p99:100")], rec,
                                 registry=reg)
        (result,) = evaluator.evaluate()
        assert result["ok"] is True and result["burn_rate"] is None

    def test_results_are_strict_json(self):
        reg, rec = trajectory(([], [5000.0] * 5))
        evaluator = SLOEvaluator(
            [parse_slo(spec) for spec in DEFAULT_SLOS], rec,
            registry=reg)
        payload = json.dumps(evaluator.evaluate(), allow_nan=False)
        assert "Infinity" not in payload
        assert INFINITE_BURN == pytest.approx(float(INFINITE_BURN))


class TestErrorsBurnRate:
    def test_error_budget_spend(self):
        # 100 requests in the window, 1 error, 99.9% objective:
        # bad_fraction 0.01 against budget 0.001 -> burn 10x.
        reg, rec = trajectory(([], []), errors=(0, 1), requests=100)
        evaluator = SLOEvaluator([parse_slo("errors:99.9")], rec,
                                 registry=reg)
        (result,) = evaluator.evaluate()
        assert result["events"] == 100
        assert result["bad_fraction"] == pytest.approx(0.01)
        assert result["burn_rate"] == pytest.approx(10.0)
        assert result["ok"] is False

    def test_no_requests_in_window_is_ok(self):
        reg, rec = trajectory(([], []), errors=(0, 0), requests=0)
        evaluator = SLOEvaluator([parse_slo("errors:99.9")], rec,
                                 registry=reg)
        (result,) = evaluator.evaluate()
        assert result["ok"] is True and result["burn_rate"] is None


class TestSLOValidation:
    def test_constructor_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SLO("uptime", "x", 0.99)

    def test_constructor_rejects_bad_target(self):
        with pytest.raises(ValueError, match="target"):
            SLO("errors", "x", 1.5)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SLO("latency", "x", 0.99)

    def test_describe(self):
        assert "250" in parse_slo("latency:p99:250").describe()
        assert "succeed" in parse_slo("errors:99.9").describe()
