"""Tests for the vectorized functional simulator and bit codecs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.netlist import NetlistBuilder
from repro.rtl import Adder
from repro.sim import (all_net_values, bits_to_int, compile_netlist,
                       evaluate, int_to_bits)


class TestBitCodecs:
    def test_int_to_bits_lsb_first(self):
        bits = int_to_bits(np.array([5]), 4)
        assert bits.tolist() == [[1, 0, 1, 0]]

    def test_negative_twos_complement(self):
        bits = int_to_bits(np.array([-1]), 4)
        assert bits.tolist() == [[1, 1, 1, 1]]
        bits = int_to_bits(np.array([-8]), 4)
        assert bits.tolist() == [[0, 0, 0, 1]]

    def test_bits_to_int_signed(self):
        assert bits_to_int(np.array([[1, 1, 1, 1]]))[0] == -1
        assert bits_to_int(np.array([[0, 0, 0, 1]]))[0] == -8

    def test_bits_to_int_unsigned(self):
        assert bits_to_int(np.array([[1, 1, 1, 1]]), signed=False)[0] == 15

    @given(st.lists(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
                    min_size=1, max_size=50))
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(bits_to_int(int_to_bits(arr, 32)), arr)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_unsigned_roundtrip(self, value):
        arr = np.array([value], dtype=np.int64)
        back = bits_to_int(int_to_bits(arr, 16), signed=False)
        assert back[0] == value

    def test_wraparound_modulo(self):
        # Values outside the width wrap modulo 2**width.
        arr = np.array([17], dtype=np.int64)
        back = bits_to_int(int_to_bits(arr, 4))
        assert back[0] == 1


class TestCompilation:
    def test_compiled_op_count(self, lib, adder8):
        compiled = compile_netlist(adder8, lib)
        assert len(compiled.ops) == adder8.num_gates
        assert len(compiled.pi_slots) == 16
        assert len(compiled.po_slots) == 8

    def test_last_use_never_frees_outputs(self, lib, adder8):
        compiled = compile_netlist(adder8, lib)
        protected = set(compiled.po_slots) | set(compiled.pi_slots) | {0, 1}
        for dead in compiled.last_use:
            assert not (set(dead) & protected)

    def test_shape_validation(self, lib, adder8):
        compiled = compile_netlist(adder8, lib)
        with pytest.raises(ValueError, match="shape"):
            evaluate(compiled, np.zeros((4, 3), dtype=np.uint8))


class TestEvaluation:
    def test_adder_matches_golden(self, lib, adder8, rng):
        compiled = compile_netlist(adder8, lib)
        component = Adder(8)
        a, b = component.random_operands(500, rng=rng)
        bits = np.concatenate([int_to_bits(a, 8), int_to_bits(b, 8)], axis=1)
        out = bits_to_int(evaluate(compiled, bits))
        assert np.array_equal(out, component.exact(a, b))

    def test_release_flag_equivalence(self, lib, adder8, rng):
        compiled = compile_netlist(adder8, lib)
        bits = rng.integers(0, 2, (64, 16)).astype(np.uint8)
        assert np.array_equal(evaluate(compiled, bits, release=True),
                              evaluate(compiled, bits, release=False))

    def test_constants_available(self, lib):
        builder = NetlistBuilder(name="c")
        a = builder.inputs(1, "a")[0]
        out = builder.or2(a, builder.const1)
        net = builder.outputs([out])
        compiled = compile_netlist(net, lib)
        result = evaluate(compiled, np.array([[0], [1]], dtype=np.uint8))
        assert result[:, 0].tolist() == [1, 1]

    def test_all_net_values_includes_internal_nets(self, lib):
        builder = NetlistBuilder(name="i")
        a, b = builder.inputs(2, "x")
        mid = builder.xor2(a, b)
        out = builder.inv(mid)
        net = builder.outputs([out])
        compiled = compile_netlist(net, lib)
        values = all_net_values(compiled,
                                np.array([[1, 0]], dtype=np.uint8))
        assert values[0, compiled.slot_of[mid]] == 1
        assert values[0, compiled.slot_of[out]] == 0

    def test_multi_output_ordering(self, lib):
        builder = NetlistBuilder(name="mo")
        a = builder.inputs(1, "a")[0]
        inv = builder.inv(a)
        net = builder.outputs([a, inv])
        compiled = compile_netlist(net, lib)
        out = evaluate(compiled, np.array([[1]], dtype=np.uint8))
        assert out[0].tolist() == [1, 0]


class TestCompileMemo:
    def test_same_netlist_and_library_share_program(self, lib, adder8):
        first = compile_netlist(adder8, lib)
        second = compile_netlist(adder8, lib)
        assert first is second

    def test_activity_and_timing_share_program(self, lib, adder8):
        from repro.sim.activity import simulate_activity
        from repro.sim.timing import TimedSimulator
        bits = np.zeros((4, len(adder8.primary_inputs)), dtype=np.uint8)
        simulate_activity(adder8, lib, bits)
        sim = TimedSimulator(adder8, lib, t_clock_ps=1000.0)
        assert sim.compiled is compile_netlist(adder8, lib)

    def test_memo_bypass(self, lib, adder8):
        memoized = compile_netlist(adder8, lib)
        fresh = compile_netlist(adder8, lib, memo=False)
        assert fresh is not memoized
        assert fresh.ops == memoized.ops
        assert fresh.pi_slots == memoized.pi_slots

    def test_mutation_invalidates(self, lib):
        netlist = Adder(4).build()
        first = compile_netlist(netlist, lib)
        netlist.add_gate("INV_X1", [netlist.primary_outputs[0]])
        second = compile_netlist(netlist, lib)
        assert second is not first
        assert len(second.ops) == len(first.ops) + 1

    def test_in_place_gate_mutation_recompiles(self, lib):
        # Regression: the memo used to key on gate *count*, so editing a
        # gate's cell in place (bypassing rebuild/add_gate) kept serving
        # the stale compiled program.
        builder = NetlistBuilder(name="memo_mut")
        a, b = builder.inputs(2, "i")
        netlist = builder.outputs([builder.and2(a, b)])
        bits = np.array([[0, 0], [1, 0], [0, 1], [1, 1]], dtype=np.uint8)
        before = evaluate(compile_netlist(netlist, lib), bits)
        assert before[:, 0].tolist() == [0, 0, 0, 1]
        gate = netlist.gates[0]
        gate.cell = gate.cell.replace("AND2", "OR2")
        after = evaluate(compile_netlist(netlist, lib), bits)
        assert after[:, 0].tolist() == [0, 1, 1, 1]

    def test_rewired_input_recompiles(self, lib):
        builder = NetlistBuilder(name="memo_pin")
        a, b = builder.inputs(2, "i")
        netlist = builder.outputs([builder.inv(a)])
        bits = np.array([[1, 0]], dtype=np.uint8)
        assert evaluate(compile_netlist(netlist, lib), bits)[0, 0] == 0
        netlist.gates[0].inputs = (b,)
        assert evaluate(compile_netlist(netlist, lib), bits)[0, 0] == 1

    def test_different_library_compiles_separately(self, adder8):
        from repro.cells import nangate45
        lib_a = nangate45()
        lib_b = nangate45(drives=(1, 2))
        assert compile_netlist(adder8, lib_a) is not \
            compile_netlist(adder8, lib_b)

    def test_memo_evicts_single_lru_entry(self):
        from repro.cells import nangate45
        from repro.sim import logic
        netlist = Adder(4).build()
        libs = [nangate45(drives=(1,))
                for __ in range(logic._COMPILE_MEMO_LIMIT + 1)]
        programs = [compile_netlist(netlist, lib) for lib in libs]
        cache = netlist._compiled_memo
        # Overflow evicted exactly one entry (the oldest), not the lot.
        assert len(cache) == logic._COMPILE_MEMO_LIMIT
        assert compile_netlist(netlist, libs[1]) is programs[1]
        assert compile_netlist(netlist, libs[0]) is not programs[0]

    def test_collected_library_never_aliases_new_one(self):
        import gc
        from repro.cells import nangate45
        netlist = Adder(4).build()
        lib_a = nangate45(drives=(1,))
        first = compile_netlist(netlist, lib_a)
        del lib_a
        gc.collect()
        # New library objects frequently recycle the dead library's
        # id(); an id-keyed memo would resurrect `first` for them.
        for __ in range(10):
            lib_b = nangate45(drives=(1,))
            assert compile_netlist(netlist, lib_b) is not first
            del lib_b
            gc.collect()
