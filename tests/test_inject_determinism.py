"""Determinism tests for injection campaigns (satellite 2).

A campaign is a pure function of its spec: the same spec + seed must
produce bit-identical results across worker counts (``--jobs 1`` vs
``--jobs N``), and across execution substrates (in-process vs the
characterization service's ``/v1/inject`` endpoint). The seed-splitting
scheme making this hold is documented in :mod:`repro.inject.masks`.
"""

import asyncio

import pytest

from repro.inject import CampaignSpec, run_campaign
from repro.obs import metrics as obs_metrics
from repro.serve import CharacterizationServer, ServeClient
from repro.serve.client import ServeError

SPEC = CampaignSpec(component="adder8",
                    scenarios=("fresh", "worst1y", "worst10y"),
                    clock_scales=(1.0, 0.95), vectors=512, seed=7,
                    effort="high")


def run(coro):
    return asyncio.run(coro)


async def start_server(tmp_path, **kwargs):
    kwargs.setdefault("workers", 1)
    server = CharacterizationServer(str(tmp_path), **kwargs)
    with obs_metrics.scoped():
        await server.start()
    return server


@pytest.fixture(scope="module")
def reference():
    return run_campaign(SPEC, jobs=1).to_dict()


def test_jobs_one_vs_many(reference):
    assert run_campaign(SPEC, jobs=2).to_dict() == reference


def test_repeat_in_process(reference):
    assert run_campaign(SPEC, jobs=1).to_dict() == reference


def test_different_seed_differs(reference):
    other = run_campaign(CampaignSpec(**{**SPEC.__dict__, "seed": 8}))
    data = other.to_dict()
    assert data != reference
    # Only the sampled masks move: the timing surface (violating gate
    # counts, clocks) is seed-independent.
    for row, ref_row in zip(data["rows"], reference["rows"]):
        assert row["scenario"] == ref_row["scenario"]
        assert row["clock_ps"] == ref_row["clock_ps"]
        assert row["violating_gates"] == ref_row["violating_gates"]


def test_served_matches_in_process(tmp_path, reference):
    async def scenario():
        server = await start_server(tmp_path)
        try:
            async with ServeClient(server.host, server.port) as client:
                response = await client.inject(SPEC.to_dict())
                again = await client.inject(SPEC.to_dict())
        finally:
            await server.stop()
        return response, again

    response, again = run(scenario())
    assert response["campaign"] == reference
    assert again["campaign"] == reference


def test_served_rejects_malformed_spec(tmp_path):
    async def scenario():
        server = await start_server(tmp_path)
        try:
            async with ServeClient(server.host, server.port) as client:
                with pytest.raises(ServeError) as excinfo:
                    await client.inject({"component": "adder8", "bogus": 1})
        finally:
            await server.stop()
        return excinfo.value

    exc = run(scenario())
    assert exc.status == 400
    assert "unknown campaign spec fields" in str(exc)
