"""Legacy setup shim.

Present so that ``pip install -e .`` works on environments without the
``wheel`` package (offline PEP-517 editable installs need it). All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
