#!/usr/bin/env python
"""Benchmark: incremental sweep synthesis vs per-point scratch synthesis.

Times the synthesis half of a cold characterization sweep — every
truncated precision variant of the 16-bit multiplier mapped, optimized
and sized at full effort — two ways:

* **scratch**: one :func:`repro.synth.synthesize` per precision point,
  the pre-sweep baseline characterize used to run;
* **sweep**: one :class:`repro.synth.sweep.SweepSynthesis` over the
  full-precision base, every truncated point derived by replaying the
  optimizer journal through the fan-out cone of the tied-low inputs
  plus localized re-sizing. Timed twice: *cold* (base synthesis and
  journal indexing included) and *steady-state* (base reused, the shape
  real campaigns hit — the per-process memo synthesizes each family
  base once and every later point, repeated sweep and serve cache miss
  re-derives against it).

Every precision point is cross-checked against the from-scratch oracle
before anything is timed: netlist content fingerprints must be
identical and delay/area/leakage float-equal, and no derivation may
fall back to scratch synthesis. Results append to ``BENCH_synth.json``
(see ``bench_util``). The PR target is >= 5x for the derived points;
the enforced floor (``--min-speedup``) is set below the measured
trajectory to catch regressions without tying CI to one host's exact
ratio.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_synth.py --repeats 3
"""

import argparse
import contextlib
import gc
import time
import tracemalloc

import bench_util
from repro.cells import default_library
from repro.core.cache import netlist_fingerprint
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.rtl import Multiplier
from repro.synth.sweep import SweepSynthesis
from repro.synth.synthesize import synthesize


def best_time(fn, repeats):
    """Best-of-*repeats* wall time of ``fn()`` in seconds (GC paused so
    collector pauses don't masquerade as synthesis cost)."""
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for __ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best


def traced_peak(fn):
    """Peak traced allocation of one ``fn()`` call in bytes."""
    tracemalloc.start()
    try:
        fn()
        __current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=16,
                        help="multiplier operand width (default 16)")
    parser.add_argument("--precisions", type=int, default=8,
                        help="precision steps in the sweep (default 8)")
    parser.add_argument("--effort", default="ultra",
                        help="synthesis effort (default ultra, the "
                             "characterize default)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail unless the steady-state sweep beats "
                             "scratch by this factor (default 1.5)")
    parser.add_argument("--out", default="BENCH_synth.json",
                        help="output JSON trajectory path")
    parser.add_argument("--trace", default=None,
                        help="also write a Chrome trace of the benchmark "
                             "run (plus a run manifest next to it)")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    tracer = obs_trace.Tracer() if args.trace else None
    with contextlib.ExitStack() as stack:
        registry = stack.enter_context(obs_metrics.scoped())
        if tracer is not None:
            stack.enter_context(obs_trace.capture(tracer))
            stack.enter_context(obs_trace.span(
                "benchmark.synth", width=args.width,
                precisions=args.precisions, effort=args.effort))
        report = _run(args)
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print("trace written to %s (%d spans)" % (args.trace, len(tracer)))
        manifest = obs_manifest.build_manifest(
            "benchmarks/perf_synth.py",
            config={"width": args.width, "precisions": args.precisions,
                    "effort": args.effort, "repeats": args.repeats},
            library=default_library(),
            stages=tracer.totals(),
            metrics=registry.snapshot(),
            duration_s=time.perf_counter() - t_start,
            extra={"benchmark": report},
        )
        manifest_path = obs_manifest.default_manifest_path(args.trace)
        obs_manifest.write_manifest(manifest_path, manifest)
        print("run manifest written to %s" % manifest_path)
    return report


def _run(args):
    lib = default_library()
    component = Multiplier(args.width)
    precisions = list(range(args.width,
                            max(args.width - args.precisions, 1), -1))

    print("sweep-synthesizing %d precision variants of %s (effort=%s)..."
          % (len(precisions), component.name, args.effort))

    # Correctness gate: never benchmark a derivation that diverges from
    # the from-scratch oracle — content fingerprints identical, metrics
    # float-equal, zero fallbacks.
    with obs_metrics.scoped() as gate_registry:
        sweep = SweepSynthesis(component, lib, effort=args.effort)
        for precision in precisions:
            derived = sweep.derive(precision)
            scratch = synthesize(component.with_precision(precision),
                                 lib, effort=args.effort)
            if (netlist_fingerprint(derived.netlist)
                    != netlist_fingerprint(scratch.netlist)
                    or derived.delay_ps != scratch.delay_ps
                    or derived.area_um2 != scratch.area_um2
                    or derived.leakage_nw != scratch.leakage_nw):
                raise SystemExit(
                    "sweep-derived synthesis diverges from scratch at "
                    "precision %d" % precision)
        fallbacks = gate_registry.snapshot()["counters"].get(
            obs_metrics.SYNTH_SWEEP_FALLBACKS, 0)
    obs_metrics.registry().merge(gate_registry.snapshot())
    if fallbacks:
        raise SystemExit("%d sweep derivation(s) fell back to scratch "
                         "synthesis" % fallbacks)
    gates = sum(sweep.derive(p).netlist.num_gates for p in precisions)
    print("correctness gate passed: %d points fingerprint-identical "
          "(%d gates total, 0 fallbacks)" % (len(precisions), gates))

    def scratch_sweep():
        for precision in precisions:
            synthesize(component.with_precision(precision), lib,
                       effort=args.effort)

    def sweep_cold():
        cold = SweepSynthesis(component, lib, effort=args.effort)
        for precision in precisions:
            cold.derive(precision)

    def sweep_steady():
        # The workload shape repeated campaigns hit: the per-process
        # memo (repro.synth.sweep.sweep_for) synthesizes each family
        # base once, then every point of this sweep — and of later
        # sweeps over the same component — is a fresh derivation
        # against it.
        sweep.clear_derived()
        for precision in precisions:
            sweep.derive(precision)

    results = {}
    for label, fn in [
        ("scratch_sweep", scratch_sweep),
        ("sweep_cold", sweep_cold),
        ("sweep_steady", sweep_steady),
    ]:
        with obs_trace.span("bench." + label, repeats=args.repeats):
            seconds = best_time(fn, args.repeats)
            peak = traced_peak(fn)
        results[label] = {"seconds": seconds, "peak_bytes": peak}
        print("%-28s %8.3f s   peak %7.1f MiB"
              % (label, seconds, peak / 2**20))

    speedup = (results["scratch_sweep"]["seconds"]
               / results["sweep_steady"]["seconds"])
    speedup_cold = (results["scratch_sweep"]["seconds"]
                    / results["sweep_cold"]["seconds"])
    print("incremental sweep synthesis: %.1fx faster (target >= 5x; "
          "%.1fx including one-time base synthesis + journal indexing)"
          % (speedup, speedup_cold))

    report = {
        "benchmark": "synth",
        "component": component.name,
        "width": args.width,
        "effort": args.effort,
        "precisions": len(precisions),
        "gates_total": gates,
        "repeats": args.repeats,
        "results": results,
        "sweep_speedup": speedup,
        "sweep_speedup_cold": speedup_cold,
        "target_sweep_speedup": 5.0,
        "min_sweep_speedup": args.min_speedup,
    }
    n_runs = bench_util.append_run(args.out, report)
    print("wrote %s (%d run(s) recorded)" % (args.out, n_runs))
    if speedup < args.min_speedup:
        raise SystemExit(
            "steady-state sweep speedup %.2fx is below the enforced "
            "floor %.2fx" % (speedup, args.min_speedup))
    return report


if __name__ == "__main__":
    main()
