"""Fig. 2 — image quality through an aged, guardband-free DCT-IDCT chain.

Paper's series (balance stress, chain clocked at fresh f_max):

    0 years: PSNR 45 dB | 1 year: 18.5 dB | 10 years: 8.4 dB
    probability of error at the IDCT output: 15% (1y) -> 100% (10y)

The chain is simulated gate-level: every multiply runs through the aged
multiplier netlist with data-dependent settle times, i.e. the exact
expensive analysis the paper's pre-characterization later replaces.
"""

import numpy as np
import pytest

from repro.aging import balance_case
from repro.approx import GateLevelArithmetic, TimedComponentModel
from repro.media import TransformCodec, make_image
from repro.quality import psnr_db
from repro.rtl import WallaceMultiplier

IMAGE = "akiyo"
SIZE = 64


def aged_roundtrip(lib, image, scenario):
    mult = WallaceMultiplier(32, final_adder="ks")
    model = TimedComponentModel(mult, lib, scenario=scenario)
    arithmetic = GateLevelArithmetic(mul_model=model)
    codec = TransformCodec(encode_arithmetic=arithmetic,
                           decode_arithmetic=arithmetic)
    return codec.roundtrip(image)


def test_fig2_aged_chain_quality(benchmark, lib, show):
    image = make_image(IMAGE, SIZE)
    reference = TransformCodec().roundtrip(image)

    def run_all():
        results = {"0y": reference}
        for years in (1, 10):
            results["%dy_balance" % years] = aged_roundtrip(
                lib, image, balance_case(years))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    quality = {}
    for label, recon in results.items():
        quality[label] = psnr_db(image, recon)
        err = float((recon != reference).mean())
        rows.append("%-12s PSNR %5.1f dB   pixel error probability %5.1f%%"
                    % (label, quality[label], 100 * err))
    show("Fig. 2 / aged DCT-IDCT chain on '%s' (%dx%d)"
         % (IMAGE, SIZE, SIZE),
         rows + ["paper: 45 dB -> 18.5 dB (1y) -> 8.4 dB (10y)"])

    # Shape: fresh is fine; aging collapses quality to a useless image.
    # (At 10 years both PSNRs sit on the noise floor, so the 1y-vs-10y
    # ordering is asserted on the pixel error probability instead.)
    assert quality["0y"] > 40.0
    assert quality["1y_balance"] < quality["0y"] - 15.0
    assert quality["10y_balance"] <= quality["1y_balance"] + 1.0
    assert quality["10y_balance"] < 15.0
    err_1y = float((results["1y_balance"] != reference).mean())
    err_10y = float((results["10y_balance"] != reference).mean())
    assert err_10y >= err_1y
    benchmark.extra_info.update({k: round(v, 2)
                                 for k, v in quality.items()})
