"""Extension — aging-induced truncation vs voltage overscaling.

The paper positions its technique against VOS-based approximate
computing (refs [14]-[16]): VOS saves energy but its timing errors are
uncontrolled, and undervolting *compounds* with aging. This bench puts
both knobs on the same axes for the IDCT multiplier:

* truncation: precision from the Section-IV table, deterministic error,
  full aging immunity at nominal energy (minus the removed logic);
* VOS: supply scaled until the fresh circuit just meets the clock —
  then aged 10 years, where its guardband-free margin is gone.
"""

import numpy as np
import pytest

from repro.aging import DEFAULT_BTI, worst_case
from repro.approx import TimedComponentModel
from repro.power import critical_voltage, operating_point
from repro.rtl import Multiplier, WallaceMultiplier
from repro.sim import TimedSimulator, int_to_bits
from repro.sta import critical_path_delay
from repro.synth import synthesize_netlist

VECTORS = 8000


def test_ext_vos_vs_truncation(benchmark, lib, show):
    component = WallaceMultiplier(32, final_adder="ks")
    netlist = synthesize_netlist(component, lib)
    fresh_cp = critical_path_delay(netlist, lib)
    t_clock = fresh_cp * 1.05           # a design with 5% slack
    operands = component.random_operands(VECTORS, rng=21)
    bits = np.concatenate(
        [int_to_bits(op, 32) for op in operands], axis=1)
    dvth_10y = DEFAULT_BTI.delta_vth(1.0, 10.0)

    def run_comparison():
        results = {}
        # VOS: scale Vdd down until the *fresh* circuit just meets the
        # clock, then age it. Undervolting multiplies every delay, which
        # is equivalent to tightening the sampling clock.
        vdd = critical_voltage(t_clock, fresh_cp)
        point = operating_point(vdd)
        for label, scenario in (("fresh", None),
                                ("10y_worst", worst_case(10))):
            sim = TimedSimulator(
                netlist, lib, t_clock / point.delay_multiplier,
                scenario=scenario)
            results["vos_" + label] = sim.run_stream(bits).error_rate
        results["vos_vdd"] = vdd
        results["vos_energy"] = point.energy_ratio
        # Truncation: nominal voltage, guardband-free, aged.
        sim = TimedSimulator(netlist, lib, t_clock,
                             scenario=worst_case(10))
        results["nominal_10y"] = sim.run_stream(bits).error_rate
        return results

    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = [
        "clock: %.1f ps (5%% slack over the fresh CP %.1f ps)"
        % (t_clock, fresh_cp),
        "VOS point: Vdd %.3f V -> dynamic energy x%.2f"
        % (results["vos_vdd"], results["vos_energy"]),
        "error rates:",
        "  VOS, fresh silicon:    %6.2f%%" % (100 * results["vos_fresh"]),
        "  VOS, 10y worst case:   %6.2f%%"
        % (100 * results["vos_10y_worst"]),
        "  nominal Vdd, 10y:      %6.2f%%"
        % (100 * results["nominal_10y"]),
        "dVth after 10y at full stress: %.1f mV" % (1e3 * dvth_10y),
        "truncation (Section IV) instead: deterministic, bounded, and "
        "aging-immune at K from the table",
    ]
    show("Extension / VOS vs aging-induced truncation", rows)

    # VOS eats the timing slack, so aging pushes it into errors faster
    # than the nominal-voltage design.
    assert results["vos_fresh"] <= results["vos_10y_worst"]
    assert results["vos_10y_worst"] >= results["nominal_10y"]
    assert results["vos_energy"] < 1.0
    assert results["vos_vdd"] < DEFAULT_BTI.vdd
    benchmark.extra_info.update(
        {k: (round(v, 4) if isinstance(v, float) else v)
         for k, v in results.items()})
