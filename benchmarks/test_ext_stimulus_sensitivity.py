"""Extension — how stimulus-dependent is actual-case characterization?

The paper validates normal-vs-IDCT stimuli (Fig. 5) and concludes that
artificial inputs suffice. This extension widens the sweep to seven
stimulus classes with deliberately extreme signal statistics (sparse,
bursty, single-bit patterns, ...) and measures the actual-case aged
delay and required precision each induces on the 16-bit multiplier —
mapping the boundary of the paper's sufficiency claim.
"""

import pytest

from repro.aging import AgingScenario, worst_case
from repro.core import ActualCaseSpec, characterize
from repro.rtl import Multiplier
from repro.sim import STIMULUS_NAMES, make_stimulus

WIDTH = 16
VECTORS = 2000
PRECISIONS = range(WIDTH, WIDTH - 8, -1)


def test_ext_stimulus_sensitivity(benchmark, lib, show):
    component = Multiplier(WIDTH)

    def sweep():
        specs = [ActualCaseSpec(10, "actual_%s" % name,
                                tuple(make_stimulus(name, WIDTH, VECTORS,
                                                    seed=9)))
                 for name in STIMULUS_NAMES]
        entry = characterize(component, lib,
                             scenarios=[worst_case(10)] + specs,
                             precisions=PRECISIONS)
        return entry

    entry = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["stimulus           aged CP @16b   K(10y)"]
    ks = {}
    for name in STIMULUS_NAMES:
        label = "10y_actual_%s" % name
        ks[name] = entry.required_precision(label)
        rows.append("%-18s %9.1f ps %7s"
                    % (name, entry.aged_ps[(WIDTH, label)], ks[name]))
    k_worst = entry.required_precision("10y_worst")
    rows.append("%-18s %9.1f ps %7s   (the guarantee)"
                % ("worst-case bound", entry.aged_ps[(WIDTH, "10y_worst")],
                   k_worst))
    spread = max(k for k in ks.values() if k is not None) \
        - min(k for k in ks.values() if k is not None)
    rows.append("spread across stimulus classes: %d bit(s)" % spread)
    show("Extension / stimulus sensitivity of actual-case K "
         "(16-bit multiplier)", rows)

    # No stimulus demands more truncation than the worst-case bound.
    for name, k in ks.items():
        assert k is not None, name
        assert k >= k_worst, name
    # The paper's claim holds for data-like stimuli (normal vs uniform
    # within a bit)...
    assert abs(ks["normal"] - ks["uniform"]) <= 1
    # ...and the extreme classes stay within a couple of bits of them —
    # actual-case characterization is robust, as the paper argues.
    assert spread <= 3
    benchmark.extra_info["K"] = ks
