"""Fig. 7 — characterizing the 32-bit multiplier and MAC.

Paper's series: component delay at precisions 32..29 under noAging / 1y
worst / 10y worst. A 1-bit reduction narrows the 10-year guardband by
29% (multiplier) / 80% (MAC); 2 bits narrow the multiplier's to 79%;
2-3 bits fully compensate 1/10 years.

Our generated components need a couple more bits (their delay falls
~1.5-2%/bit), but the same gradual delay-for-precision trade emerges;
EXPERIMENTS.md tabulates paper-vs-measured.
"""

import pytest

from repro.aging import worst_case
from repro.core import characterize
from repro.rtl import Multiplier, MultiplyAccumulate

PRECISIONS = range(32, 21, -1)


@pytest.mark.parametrize("component_cls,paper_note", [
    (Multiplier, "paper mult: 1 bit -> 29% narrowing, 2 bits -> 79%"),
    (MultiplyAccumulate, "paper MAC: 1 bit -> 80% narrowing"),
])
def test_fig7_characterization(benchmark, lib, show, approx_store,
                               component_cls, paper_note):
    component = component_cls(32)
    entry = benchmark.pedantic(
        characterize, args=(component, lib),
        kwargs={"scenarios": [worst_case(1), worst_case(10)],
                "precisions": PRECISIONS},
        rounds=1, iterations=1)
    approx_store.add(entry)

    rows = ["prec   fresh   1y(WC)  10y(WC)  guardband narrowing @10y"]
    for p in entry.precisions:
        rows.append("%4d  %6.1f  %6.1f  %7.1f  %5.0f%%"
                    % (p, entry.fresh_ps[p],
                       entry.aged_ps[(p, "1y_worst")],
                       entry.aged_ps[(p, "10y_worst")],
                       100 * entry.guardband_narrowing("10y_worst", p)))
    k1 = entry.required_precision("1y_worst")
    k10 = entry.required_precision("10y_worst")
    rows.append("K(1y)=%s  K(10y)=%s" % (k1, k10))
    rows.append(paper_note)
    show("Fig. 7 / %s characterization" % component.name, rows)

    # Shape assertions.
    assert k10 is not None and k1 is not None
    assert k10 <= k1
    # Guardband narrowing is monotone in truncation depth and reaches
    # 100% within the sweep.
    narrowing = [entry.guardband_narrowing("10y_worst", p)
                 for p in entry.precisions]
    assert all(b >= a - 1e-9 for a, b in zip(narrowing, narrowing[1:]))
    assert narrowing[-1] == 1.0
    # A small reduction already buys a significant chunk (paper: 29-80%
    # for 1 bit; ours lands there within ~2 bits).
    assert entry.guardband_narrowing("10y_worst", 30) > 0.15
    benchmark.extra_info.update({"K_1y": k1, "K_10y": k10})
