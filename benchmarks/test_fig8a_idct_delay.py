"""Fig. 8(a) — IDCT delays: aging-unaware vs aging-induced approximations.

Paper's series: the original (aging-unaware) IDCT exceeds its fresh-clock
constraint once aged, while the approximated design (multiplier reduced
by 3 bits; relative slack was -8.3% after 10y worst-case) meets the
constraint at Initial / 1y WC / 10y WC / 10y AC — "no errors".

Ours: the multiplier block shows ~-16% relative slack at 10y WC (our
calibrated BTI is at the aggressive end of the paper's range) and gives
up 8 bits; every reported scenario then meets the constraint with zero
residual guardband.
"""

import pytest

from repro.aging import balance_case, worst_case


def test_fig8a_idct_delays(benchmark, lib, show, idct_flow):
    micro, report = idct_flow

    # The flow itself is the benchmarked artifact; re-run it fresh.
    def rerun():
        from repro.core import remove_guardband
        return remove_guardband(micro, lib, worst_case(10),
                                report_scenarios=[worst_case(1),
                                                  balance_case(10)])

    report = benchmark.pedantic(rerun, rounds=1, iterations=1)

    rows = ["constraint t_CP(noAging) = %.1f ps" % report.constraint_ps,
            "scenario      original     approximated"]
    for label in report.original_delays_ps:
        orig = report.original_delays_ps[label]
        approx = report.approximated_delays_ps[label]
        verdict = "ok" if approx <= report.constraint_ps else "VIOLATES"
        rows.append("%-12s %7.1f ps   %7.1f ps  %s"
                    % (label, orig, approx, verdict))
    decision = report.outcome.decisions["mult"]
    rows.append("multiplier precision %d -> %d (relative slack %.1f%%)"
                % (decision.original_precision, decision.chosen_precision,
                   100 * decision.relative_slack))
    rows.append("paper: mult rel. slack -8.3%, 3-bit reduction, all "
                "scenarios meet constraint")
    show("Fig. 8(a) / IDCT delay comparison", rows)

    # Shape assertions: original violates when aged, ours never does.
    assert report.original_delays_ps["10y_worst"] > report.constraint_ps
    assert report.meets_constraint
    assert report.outcome.validated
    assert report.outcome.residual_guardband_ps == 0.0
    assert decision.approximated
    # Only the multiplier is approximated (the adder keeps full
    # precision, as in the paper).
    assert not report.outcome.decisions["acc"].approximated
