"""Extension — the flow on a second application (FIR low-pass filter).

Not a paper figure: this extension validates the paper's claim that the
methodology is application-agnostic ("our approach can be equally
applied to other circuits"). The identical Section-V flow protects a
16-tap FIR datapath, and the bounded approximation keeps filtering
fidelity high across five signal classes.
"""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.approx import ComponentArithmetic
from repro.core import remove_guardband
from repro.media import SIGNAL_NAMES, make_signal
from repro.quality import snr_db
from repro.rtl import (FixedPointFIR, Multiplier, fir_microarchitecture,
                       lowpass_taps)

SAMPLES = 4096
TAPS = 16


def test_ext_fir_case_study(benchmark, lib, show, approx_store):
    micro = fir_microarchitecture(width=32, taps=TAPS)

    def run_flow_and_measure():
        report = remove_guardband(micro, lib, worst_case(10),
                                  approx_library=approx_store)
        precision = report.outcome.decisions["mult"].chosen_precision
        taps = lowpass_taps(TAPS)
        exact = FixedPointFIR(taps)
        approx = FixedPointFIR(taps, arithmetic=ComponentArithmetic(
            mul_component=Multiplier(32, precision=precision)))
        snrs = {}
        for name in SIGNAL_NAMES:
            signal = make_signal(name, SAMPLES)
            snrs[name] = snr_db(exact.filter(signal),
                                approx.filter(signal))
        return report, snrs

    report, snrs = benchmark.pedantic(run_flow_and_measure, rounds=1,
                                      iterations=1)

    decision = report.outcome.decisions["mult"]
    rows = ["tap multiplier: %d -> %d bits; validated: %s"
            % (decision.original_precision, decision.chosen_precision,
               report.meets_constraint)]
    for name, value in snrs.items():
        rows.append("%-9s SNR %6.1f dB" % (name, value))
    rows.append("average   SNR %6.1f dB" % np.mean(list(snrs.values())))
    show("Extension / FIR filter case study (10y worst case)", rows)

    assert report.meets_constraint
    assert decision.approximated
    # The approximation cost stays modest (broadband noise is the
    # stress case and sits lowest, like 'mobile' does for the IDCT).
    assert min(snrs.values()) > 12.0
    assert min(snrs, key=snrs.get) == "noise"
    assert np.mean(list(snrs.values())) > 25.0
    benchmark.extra_info["snr_db"] = {k: round(v, 1)
                                      for k, v in snrs.items()}
