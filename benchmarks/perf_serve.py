#!/usr/bin/env python
"""Benchmark: characterization service vs a no-dedup/no-mem-tier baseline.

Drives the :mod:`repro.serve` job server with a closed-loop, zipf-skewed
query mix — the shape a shared characterization service actually sees
when a CI fleet or a sweep campaign hammers the same handful of hot
components — and times two server configurations over the *identical*
request schedule, each starting from its own cold cache:

* **baseline**: single-flight dedup off, in-memory tier off. Every
  request that arrives before its key is stored recomputes the point,
  and every warm request re-reads and re-parses the on-disk JSON;
* **tiered**: the full stack — concurrent identical misses collapse
  onto one in-flight compute, and warm queries answer from the
  in-memory LRU tier without touching disk.

Two phases are timed per server:

* **mix**: the zipf schedule against a cold cache. Under closed-loop
  concurrency the baseline's pool queue backs up, which stretches the
  window during which duplicate requests recompute — the thundering
  herd single-flight dedup exists to absorb. The >= 5x PR target is
  for this phase;
* **warm replay**: the same schedule again, now fully cached — pure
  tier-serving cost (memory hits vs disk read+parse per point);
* **profiled replay** (tiered server only): the warm replay once more
  with the wall-clock sampling profiler attached, to measure profiler
  overhead on the steady-state mix (recorded as
  ``profiler.overhead_pct``; the PR target is <= 5%).

The tiered server also runs the periodic time-series recorder, and its
final-sample p50/p95/p99 latency quantiles are cross-checked for exact
equality against the ``/v1/stats`` histogram path — two independent
read paths over the same registry. ``--flamegraph`` and
``--timeseries`` write the profiler's Chrome flame chart and the
time-series JSONL journal as CI artifacts.

Every response is cross-checked bit-exactly between the two servers
before anything is reported, and a sample of queries is checked against
direct :func:`repro.core.characterize` calls. Results append to
``BENCH_serve.json`` (see ``bench_util``).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_serve.py
"""

import argparse
import asyncio
import contextlib
import json
import os
import shutil
import time

import numpy as np

import bench_util
from repro.aging import worst_case
from repro.cells import default_library
from repro.core import characterize
from repro.core.cache import CharacterizationCache
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.profile import SamplingProfiler
from repro.rtl import Multiplier
from repro.serve import CharacterizationServer, ServeClient

def build_population(args):
    """Distinct queries: one (precision, lifetime) point each.

    Single-point queries are the service's RPC granularity — each fleet
    member asks for exactly the point its local search is expanding,
    which is what makes identical queries from different clients land
    adjacent in the server's pool queue (the thundering-herd shape).
    Ranks cycle precisions fastest and slide the aging lifetime every
    ``width`` ranks, so the hot head of the zipf mix spans the whole
    precision ladder of the shared component.
    """
    component = "mult%d" % args.width
    return [{
        "component": component,
        "precisions": [args.width - (rank % args.width)],
        "scenarios": ["worst%gy" % (1.0 + 0.25 * (rank // args.width))],
        "effort": args.effort,
    } for rank in range(args.population)]


def zipf_schedule(population_size, requests, skew, seed):
    """Seeded zipf(*skew*) draw of *requests* population indices."""
    ranks = np.arange(1, population_size + 1, dtype=float)
    probabilities = ranks ** -skew
    probabilities /= probabilities.sum()
    rng = np.random.default_rng(seed)
    return [int(i) for i in
            rng.choice(population_size, size=requests, p=probabilities)]


async def drive(server, population, schedule, concurrency):
    """Closed-loop fleet: *concurrency* clients each replay *schedule*.

    Every client walks the same mix, like a DSE fleet or CI shard set
    sweeping the same grid — so identical queries are routinely in
    flight from several clients at once, which is the thundering herd
    single-flight dedup exists to absorb.
    """
    replies = [[None] * len(schedule) for __ in range(concurrency)]

    async def client_loop(slot):
        async with ServeClient(server.host, server.port) as client:
            for index, query_index in enumerate(schedule):
                replies[slot][index] = await client.characterize(
                    population[query_index])

    start = time.perf_counter()
    await asyncio.gather(*[client_loop(slot)
                           for slot in range(concurrency)])
    return time.perf_counter() - start, replies


def canonical(reply):
    """Reply stripped of tier provenance, for cross-server comparison."""
    points = [{k: v for k, v in point.items() if k != "source"}
              for point in reply["points"]]
    return json.dumps(points, sort_keys=True)


def phase_report(wall_s, replies, stats, prev_stats=None):
    requests = sum(len(per_client) for per_client in replies)
    points = sum(len(r["points"]) for per_client in replies
                 for r in per_client)
    report = {
        "wall_s": wall_s,
        "requests": requests,
        "points": points,
        "requests_per_s": requests / wall_s,
        "points_per_s": points / wall_s,
        "computes": stats["computes"],
        "dedup_hits": stats["dedup_hits"],
        "dedup_ratio": stats["dedup_ratio"],
        "tier_hits": dict(stats["tier_hits"]),
        "mem_hit_ratio": stats["mem_hit_ratio"],
        "tier_hit_ratio": stats["tier_hit_ratio"],
    }
    if prev_stats is not None:
        # Stats are cumulative per server: delta them to this phase, and
        # recompute the per-point ratios over the delta'd counts.
        for field in ("computes", "dedup_hits"):
            report[field] = stats[field] - prev_stats[field]
        report["tier_hits"] = {
            tier: stats["tier_hits"][tier] - prev_stats["tier_hits"][tier]
            for tier in stats["tier_hits"]}
        resolved = (report["computes"] + report["dedup_hits"]
                    + sum(report["tier_hits"].values()))
        if resolved:
            report["dedup_ratio"] = report["dedup_hits"] / resolved
            report["mem_hit_ratio"] = report["tier_hits"]["mem"] / resolved
            report["tier_hit_ratio"] = (sum(report["tier_hits"].values())
                                        / resolved)
        else:
            report["dedup_ratio"] = 0.0
            report["mem_hit_ratio"] = 0.0
            report["tier_hit_ratio"] = 0.0
    return report


async def warmup(server, args):
    """Untimed: warm every (worker, precision) synthesis/STA memo.

    For each precision, fires one request per pool worker using
    ``balance`` lifetimes the zipf mix (all ``worst``) never asks for.
    The lifetimes are distinct, so the requests carry distinct scenario
    fingerprints and cannot collapse onto one in-flight compute — all
    workers compute concurrently, and every worker's netlist/timing
    memo for that precision gets hot, the steady state of a long-lived
    service. Every mix query still finds its own fingerprints cold in
    the cache. ``--warmup-rounds`` repeats the pass, since the pool is
    free to hand two tasks of a wave to one worker.
    """
    async def one(precision, lifetime_index):
        async with ServeClient(server.host, server.port) as client:
            await client.characterize({
                "component": "mult%d" % args.width,
                "precisions": [precision],
                "scenarios": ["balance%gy" % (1.0 + 0.25 * lifetime_index)],
                "effort": args.effort,
            })

    for round_index in range(args.warmup_rounds):
        for precision in range(1, args.width + 1):
            await asyncio.gather(*[
                one(precision, round_index * args.workers + k)
                for k in range(args.workers)])


async def bench_server(label, root, lib, args, population, schedule,
                       dedup, mem_entries, profile=False,
                       flamegraph=None, ts_jsonl=None):
    cache = CharacterizationCache(root, shards=args.shards,
                                  mem_entries=mem_entries)
    server = CharacterizationServer(cache, library=lib,
                                    workers=args.workers, dedup=dedup,
                                    ts_interval=0.5, ts_jsonl=ts_jsonl)
    outer = obs_metrics.registry()
    prof_replies = None
    profiled = None
    with obs_trace.span("bench.serve." + label, dedup=dedup,
                        mem_entries=mem_entries), \
            obs_metrics.scoped() as server_registry:
        # Each server pins its own registry so its stats() aren't
        # polluted by the other configuration's counters.
        await server.start()
        try:
            await warmup(server, args)
            warm_base = server.stats()
            mix_s, mix_replies = await drive(server, population, schedule,
                                             args.concurrency)
            mix_stats = server.stats()
            warm_s, warm_replies = await drive(server, population, schedule,
                                               args.concurrency)
            warm_stats = server.stats()
            if profile:
                # Warm replay once more with the sampling profiler
                # attached: its wall-clock ratio to the unprofiled warm
                # replay is the profiler's steady-state overhead.
                profiler = SamplingProfiler()
                profiler.start()
                prof_s, prof_replies = await drive(
                    server, population, schedule, args.concurrency)
                profiler.stop()
                profiled = {
                    "wall_s": prof_s,
                    "samples": profiler.sample_count(),
                    "interval_s": profiler.interval,
                    "overhead_pct": 100.0 * (prof_s / warm_s - 1.0),
                }
                if flamegraph:
                    profiler.write_chrome(flamegraph)
                    print("profiler flame chart written to %s "
                          "(%d samples)" % (flamegraph,
                                            profiler.sample_count()))
            final_stats = server.stats()
        finally:
            await server.stop()
    outer.merge(server_registry.snapshot())
    report = {
        "dedup": dedup,
        "mem_entries": mem_entries,
        "mix": phase_report(mix_s, mix_replies, mix_stats, warm_base),
        "warm": phase_report(warm_s, warm_replies, warm_stats, mix_stats),
        "latency_ms": warm_stats["latency_ms"],
    }
    if profiled is not None:
        report["profiler"] = profiled
    # Final time-series sample (taken by server.stop()) must agree
    # exactly with the /v1/stats histogram path: same registry, two
    # independent read paths.
    sample = server.recorder.latest() if server.recorder else None
    ts_quantiles = (sample or {}).get("quantiles", {}).get(
        obs_metrics.SERVE_LATENCY_MS)
    if ts_quantiles and final_stats["latency_ms"]:
        for key in ("p50", "p95", "p99"):
            if ts_quantiles[key] != final_stats["latency_ms"][key]:
                raise SystemExit(
                    "time-series %s (%r) diverges from histogram %s "
                    "(%r)" % (key, ts_quantiles[key], key,
                              final_stats["latency_ms"][key]))
        report["timeseries_latency_ms"] = {
            key: ts_quantiles[key] for key in ("p50", "p95", "p99")}
        report["timeseries_matches_histogram"] = True
    for phase in ("mix", "warm"):
        p = report[phase]
        print("%-8s %-5s %7.2f s  %7.1f req/s  %6d computes  "
              "dedup %5.1f%%  mem/disk %d/%d"
              % (label, phase, p["wall_s"], p["requests_per_s"],
                 p["computes"], 100 * p["dedup_ratio"],
                 p["tier_hits"]["mem"], p["tier_hits"]["disk"]))
    return report, mix_replies, warm_replies, prof_replies


def check_against_direct(lib, args, population, replies, schedule):
    """A sample of served queries must equal direct characterize() calls."""
    checked = set()
    for reply, query_index in zip(replies[0], schedule):
        if query_index in checked:
            continue
        checked.add(query_index)
        if len(checked) > args.oracle_samples:
            break
        query = population[query_index]
        scenario = worst_case(float(query["scenarios"][0]
                                    .replace("worst", "").rstrip("y")))
        table = characterize(Multiplier(args.width), lib,
                             scenarios=[scenario],
                             precisions=query["precisions"],
                             effort=args.effort, cache=None)
        for point in reply["points"]:
            precision = point["precision"]
            if (point["metrics"]["delay_ps"] != table.fresh_ps[precision]
                    or point["metrics"]["area_um2"]
                    != table.area_um2[precision]
                    or point["metrics"]["gates"] != table.gates[precision]
                    or point["aged"][scenario.label]
                    != table.aged_ps[(precision, scenario.label)]):
                raise SystemExit("served point diverges from direct "
                                 "characterize() for %r" % (query,))


async def _run(args, lib, scratch):
    population = build_population(args)
    schedule = zipf_schedule(len(population), args.requests, args.skew,
                             args.seed)
    print("population %d point queries (mult%d, %d precisions x %d "
          "lifetimes), mix of %d requests replayed by %d clients "
          "(zipf skew %.2f), %d pool workers"
          % (len(population), args.width, args.width,
             (len(population) + args.width - 1) // args.width,
             len(schedule), args.concurrency, args.skew, args.workers))

    baseline, base_mix, base_warm, __ = await bench_server(
        "baseline", os.path.join(scratch, "baseline"), lib, args,
        population, schedule, dedup=False, mem_entries=0)
    tiered, tier_mix, tier_warm, tier_prof = await bench_server(
        "tiered", os.path.join(scratch, "tiered"), lib, args,
        population, schedule, dedup=True, mem_entries=args.mem_entries,
        profile=not args.no_profile, flamegraph=args.flamegraph,
        ts_jsonl=args.timeseries)

    # Correctness gate: identical schedule -> bit-identical answers from
    # every client, every tier of both servers, and the library directly.
    compared = 0
    phases = [base_mix, base_warm, tier_mix, tier_warm]
    if tier_prof is not None:
        phases.append(tier_prof)
    for index in range(len(schedule)):
        canon = canonical(base_mix[0][index])
        for phase in phases:
            for per_client in phase:
                if canonical(per_client[index]) != canon:
                    raise SystemExit(
                        "server responses diverge at request %d" % index)
                compared += 1
    check_against_direct(lib, args, population, tier_warm, schedule)
    print("correctness gate passed: %d responses bit-identical across "
          "clients, servers and tiers; %d checked against direct "
          "characterize()" % (compared, args.oracle_samples))

    mix_speedup = baseline["mix"]["wall_s"] / tiered["mix"]["wall_s"]
    warm_speedup = baseline["warm"]["wall_s"] / tiered["warm"]["wall_s"]
    cold_vs_warm = (tiered["warm"]["requests_per_s"]
                    / tiered["mix"]["requests_per_s"])
    print("mix phase: %.1fx faster (target >= 5x); warm replay: %.1fx; "
          "tiered cold-vs-warm %.1fx; tiered dedup ratio %.1f%%, "
          "warm mem hit ratio %.1f%%"
          % (mix_speedup, warm_speedup, cold_vs_warm,
             100 * tiered["mix"]["dedup_ratio"],
             100 * tiered["warm"]["mem_hit_ratio"]))
    if "profiler" in tiered:
        print("profiler: %d samples at %.0f ms, warm-mix overhead "
              "%+.1f%% (target <= 5%%)"
              % (tiered["profiler"]["samples"],
                 tiered["profiler"]["interval_s"] * 1e3,
                 tiered["profiler"]["overhead_pct"]))
    if tiered.get("timeseries_matches_histogram"):
        ts = tiered["timeseries_latency_ms"]
        print("time-series final sample matches /v1/stats histogram "
              "exactly: p50=%.3f p95=%.3f p99=%.3f ms"
              % (ts["p50"], ts["p95"], ts["p99"]))

    report = {
        "benchmark": "serve",
        "component": "mult%d" % args.width,
        "effort": args.effort,
        "population": len(population),
        "requests": args.requests,
        "concurrency": args.concurrency,
        "workers": args.workers,
        "shards": args.shards,
        "zipf_skew": args.skew,
        "seed": args.seed,
        "baseline": baseline,
        "tiered": tiered,
        "mix_speedup": mix_speedup,
        "warm_speedup": warm_speedup,
        "cold_vs_warm_speedup": cold_vs_warm,
        "target_mix_speedup": 5.0,
    }
    if "profiler" in tiered:
        report["profiler_overhead_pct"] = \
            tiered["profiler"]["overhead_pct"]
        report["target_profiler_overhead_pct"] = 5.0
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=12,
                        help="multiplier operand width (default 12)")
    parser.add_argument("--effort", default="high",
                        help="synthesis effort (default high)")
    parser.add_argument("--population", type=int, default=48,
                        help="distinct point queries in the mix "
                             "(default 48)")
    parser.add_argument("--requests", type=int, default=40,
                        help="mix length each client replays per phase "
                             "(default 40)")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="concurrent clients (default 32)")
    parser.add_argument("--workers", type=int, default=10,
                        help="server pool workers (default 10)")
    parser.add_argument("--shards", type=int, default=4,
                        help="on-disk cache shards, both servers "
                             "(default 4)")
    parser.add_argument("--mem-entries", type=int, default=256,
                        help="tiered server memory-tier cap (default 256)")
    parser.add_argument("--skew", type=float, default=1.1,
                        help="zipf exponent of the query mix (default 1.1)")
    parser.add_argument("--seed", type=int, default=20170618,
                        help="schedule RNG seed (default 20170618)")
    parser.add_argument("--warmup-rounds", type=int, default=2,
                        help="untimed (worker x precision) memo-warmup "
                             "passes per server (default 2)")
    parser.add_argument("--oracle-samples", type=int, default=3,
                        help="queries cross-checked against direct "
                             "characterize() (default 3)")
    parser.add_argument("--scratch", default=None,
                        help="cache scratch dir (default: a fresh tmp dir)")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON trajectory path")
    parser.add_argument("--trace", default=None,
                        help="also write a Chrome trace of the benchmark "
                             "run (plus a run manifest next to it)")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the profiled warm replay (and its "
                             "overhead measurement)")
    parser.add_argument("--flamegraph", default=None, metavar="PATH",
                        help="write the profiled replay's Chrome flame "
                             "chart here (CI artifact)")
    parser.add_argument("--timeseries", default=None, metavar="PATH",
                        help="journal the tiered server's metric time "
                             "series to this JSONL file (CI artifact)")
    args = parser.parse_args(argv)

    lib = default_library()
    scratch = args.scratch or ("/tmp/perf_serve_%d" % os.getpid())
    shutil.rmtree(scratch, ignore_errors=True)
    os.makedirs(scratch)

    t_start = time.perf_counter()
    tracer = obs_trace.Tracer() if args.trace else None
    try:
        with contextlib.ExitStack() as stack:
            registry = stack.enter_context(obs_metrics.scoped())
            if tracer is not None:
                stack.enter_context(obs_trace.capture(tracer))
                stack.enter_context(obs_trace.span(
                    "benchmark.serve", requests=args.requests,
                    concurrency=args.concurrency, skew=args.skew))
            report = asyncio.run(_run(args, lib, scratch))
    finally:
        if args.scratch is None:
            shutil.rmtree(scratch, ignore_errors=True)
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print("trace written to %s (%d spans)" % (args.trace, len(tracer)))
        manifest = obs_manifest.build_manifest(
            "benchmarks/perf_serve.py",
            config={"width": args.width, "effort": args.effort,
                    "requests": args.requests,
                    "concurrency": args.concurrency,
                    "workers": args.workers, "skew": args.skew,
                    "seed": args.seed},
            library=lib,
            stages=tracer.totals(),
            metrics=registry.snapshot(),
            duration_s=time.perf_counter() - t_start,
            extra={"benchmark": report},
        )
        manifest_path = obs_manifest.default_manifest_path(args.trace)
        obs_manifest.write_manifest(manifest_path, manifest)
        print("run manifest written to %s" % manifest_path)
    n_runs = bench_util.append_run(args.out, report)
    print("wrote %s (%d run(s) recorded)" % (args.out, n_runs))
    return report


if __name__ == "__main__":
    main()
