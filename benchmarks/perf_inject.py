#!/usr/bin/env python
"""Benchmark: packed XOR fault injection vs the scalar reference injector.

Times the fault-injection campaign workload on the paper's 16-bit
multiplier at the guardband-free operating point (fresh clock, aged
gates): per-gate Bernoulli mask sampling (:mod:`repro.inject.masks`)
plus the packed 64-way XOR injector
(:func:`repro.inject.inject_sim.evaluate_packed_injected`), against the
scalar uint8 reference injector on a subsample. The acceptance target
is >= 10^6 injected vectors per second end-to-end (masks + replay).

Correctness is gated before anything is timed:

* the fresh corner at its own critical path derives an *empty*
  faultload (exactly zero injections);
* packed and scalar injectors agree bit-for-bit on a subsample;
* two campaign runs from the same spec + seed produce identical
  results (bit-reproducibility).

Results append to ``BENCH_inject.json`` (see ``bench_util``); the
``packed_speedup`` field is regression-gated by ``repro bench-report``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_inject.py
"""

import argparse
import contextlib
import time
import tracemalloc

import bench_util
from repro.cells import default_library
from repro.core.specs import parse_scenario
from repro.inject import CampaignSpec, build_faultload, run_campaign
from repro.inject.inject_sim import (count_mask_bits,
                                     evaluate_bytes_injected,
                                     evaluate_packed_injected,
                                     unpack_op_masks)
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.rtl import Multiplier
from repro.sim import bitpack
from repro.sim.activity import operand_stream_bits
from repro.sim.logic import compile_netlist, evaluate_packed
from repro.sim.stimuli import make_stimulus
from repro.sta.engine import analyze_batch, compile_timing
from repro.synth import synthesize_netlist


def best_time(fn, repeats):
    """Best-of-*repeats* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def traced_peak(fn):
    """Peak traced allocation of one ``fn()`` call in bytes."""
    tracemalloc.start()
    try:
        fn()
        __current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=16,
                        help="multiplier operand width (default 16)")
    parser.add_argument("--vectors", type=int, default=1 << 20,
                        help="stimulus vectors (default 1048576)")
    parser.add_argument("--ref-vectors", type=int, default=1 << 14,
                        help="vectors for the scalar reference timing "
                             "subsample (default 16384)")
    parser.add_argument("--scenario", default="worst10y",
                        help="aging scenario (default worst10y)")
    parser.add_argument("--seed", type=int, default=20170618,
                        help="campaign seed (default 20170618)")
    parser.add_argument("--effort", default="high",
                        help="synthesis effort (default high)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--out", default="BENCH_inject.json",
                        help="output JSON trajectory path")
    parser.add_argument("--trace", default=None,
                        help="also write a Chrome trace of the benchmark "
                             "run (plus a run manifest next to it)")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    tracer = obs_trace.Tracer() if args.trace else None
    with contextlib.ExitStack() as stack:
        registry = stack.enter_context(obs_metrics.scoped())
        if tracer is not None:
            stack.enter_context(obs_trace.capture(tracer))
            stack.enter_context(obs_trace.span(
                "benchmark.inject", width=args.width,
                vectors=args.vectors, scenario=args.scenario))
        report = _run(args)
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print("trace written to %s (%d spans)" % (args.trace, len(tracer)))
        manifest = obs_manifest.build_manifest(
            "benchmarks/perf_inject.py",
            config={"width": args.width, "vectors": args.vectors,
                    "scenario": args.scenario, "seed": args.seed,
                    "effort": args.effort, "repeats": args.repeats},
            library=default_library(),
            stages=tracer.totals(),
            metrics=registry.snapshot(),
            duration_s=time.perf_counter() - t_start,
            extra={"benchmark": report},
        )
        manifest_path = obs_manifest.default_manifest_path(args.trace)
        obs_manifest.write_manifest(manifest_path, manifest)
        print("run manifest written to %s" % manifest_path)
    return report


def _run(args):
    lib = default_library()
    component = Multiplier(args.width)
    scenario = parse_scenario(args.scenario)
    print("synthesizing %s (effort=%s)..." % (component.name, args.effort))
    netlist = synthesize_netlist(component, lib, effort=args.effort)
    compiled = compile_netlist(netlist, lib)
    program = compile_timing(netlist, lib)
    batch = analyze_batch(netlist, lib, [parse_scenario("fresh"), scenario],
                          program=program)
    clock_ps = float(batch.critical_path_ps[0])
    print("%d gates, fresh critical path %.2f ps, %s critical path %.2f ps"
          % (program.n_gates, clock_ps, scenario.label,
             float(batch.critical_path_ps[1])))

    a, b = make_stimulus("normal", args.width, args.vectors, seed=args.seed)
    pi_bits = operand_stream_bits([a, b], component.operand_widths)
    words = bitpack.word_count(args.vectors)

    # -- correctness gates (never benchmark a wrong injector) -------------
    fresh_load = build_faultload(program, batch, "fresh", clock_ps)
    if fresh_load.n_violating != 0:
        raise SystemExit("fresh corner at its own critical path derived "
                         "%d violating gate(s); expected exactly 0"
                         % fresh_load.n_violating)
    faultload = build_faultload(program, batch, scenario.label, clock_ps)
    if faultload.n_violating == 0:
        raise SystemExit("aged corner %s derived no violating gates at the "
                         "fresh clock; nothing to inject" % scenario.label)
    masks = faultload.masks(args.seed, words)
    injected, faulted = count_mask_bits(masks, args.vectors)

    ref_n = min(args.ref_vectors, args.vectors)
    ref_words = bitpack.word_count(ref_n)
    ref_bits = pi_bits[:ref_n]
    ref_masks = {row: mask[:ref_words] for row, mask in masks.items()}
    packed_sub = evaluate_packed_injected(compiled, ref_bits, ref_masks)
    scalar_sub = evaluate_bytes_injected(
        compiled, ref_bits, unpack_op_masks(ref_masks, ref_n))
    if not (packed_sub == scalar_sub).all():
        raise SystemExit("packed injector disagrees with the scalar "
                         "reference on a %d-vector subsample" % ref_n)

    spec = CampaignSpec(component="multiplier", width=args.width,
                        scenarios=("fresh", args.scenario),
                        clock_scales=(1.0,), vectors=4096, seed=args.seed,
                        effort=args.effort)
    if run_campaign(spec).to_dict() != run_campaign(spec).to_dict():
        raise SystemExit("campaign is not bit-reproducible from its seed")
    print("correctness gates passed: fresh corner empty, packed == scalar "
          "reference on %d vectors, campaign bit-reproducible" % ref_n)
    print("%d violating gate(s), %d faults injected over %d vectors "
          "(%.4f faults/vector)"
          % (faultload.n_violating, injected, args.vectors,
             injected / args.vectors))

    # -- timings -----------------------------------------------------------
    def clean_eval():
        evaluate_packed(compiled, pi_bits)

    def mask_sampling():
        faultload.masks(args.seed, words)

    def injected_eval():
        evaluate_packed_injected(compiled, pi_bits, masks)

    def inject_point():
        # End-to-end grid point: sample masks, replay, count faults.
        m = faultload.masks(args.seed, words)
        count_mask_bits(m, args.vectors)
        evaluate_packed_injected(compiled, pi_bits, m)

    def scalar_reference():
        evaluate_bytes_injected(compiled, ref_bits,
                                unpack_op_masks(ref_masks, ref_n))

    results = {}
    for label, fn in [
        ("clean_packed_eval", clean_eval),
        ("mask_sampling", mask_sampling),
        ("injected_packed_eval", injected_eval),
        ("inject_point", inject_point),
        ("scalar_reference", scalar_reference),
    ]:
        with obs_trace.span("bench." + label, repeats=args.repeats):
            seconds = best_time(fn, args.repeats)
            peak = traced_peak(fn)
        vectors = ref_n if label == "scalar_reference" else args.vectors
        results[label] = {"seconds": seconds, "peak_bytes": peak,
                          "vectors": vectors}
        print("%-22s %8.3f s   %10.0f vectors/s   peak %7.1f MiB"
              % (label, seconds, vectors / seconds, peak / 2**20))

    vectors_per_sec = args.vectors / results["inject_point"]["seconds"]
    scalar_per_vector = results["scalar_reference"]["seconds"] / ref_n
    packed_per_vector = results["inject_point"]["seconds"] / args.vectors
    packed_speedup = scalar_per_vector / packed_per_vector
    overhead_pct = 100.0 * (results["inject_point"]["seconds"]
                            / results["clean_packed_eval"]["seconds"] - 1.0)
    print("end-to-end injection: %.2fM vectors/s (target >= 1M), "
          "%.1fx over the scalar reference, +%.0f%% over clean packed eval"
          % (vectors_per_sec / 1e6, packed_speedup, overhead_pct))

    report = {
        "benchmark": "inject",
        "component": component.name,
        "width": args.width,
        "effort": args.effort,
        "scenario": scenario.label,
        "clock_ps": clock_ps,
        "vectors": args.vectors,
        "gates": program.n_gates,
        "violating_gates": faultload.n_violating,
        "injected_faults": int(injected),
        "faulted_vectors": int(faulted),
        "seed": args.seed,
        "repeats": args.repeats,
        "results": results,
        "vectors_per_sec": vectors_per_sec,
        "target_vectors_per_sec": 1e6,
        "packed_speedup": packed_speedup,
        "injection_overhead_pct": overhead_pct,
    }
    n_runs = bench_util.append_run(args.out, report)
    print("wrote %s (%d run(s) recorded)" % (args.out, n_runs))
    if vectors_per_sec < 1e6:
        raise SystemExit("injection throughput %.0f vectors/s is below "
                         "the 10^6 target" % vectors_per_sec)
    return report


if __name__ == "__main__":
    main()
