"""Extension — robustness of the chosen precision to BTI uncertainty.

Aging-model parameters carry real-world uncertainty that the paper's
single calibrated library cannot express. This extension sweeps scale
factors on the ΔVth prefactor and asks: does the flow's precision choice
survive a mis-calibrated model, and what would insurance cost?
"""

import pytest

from repro.aging import worst_case
from repro.core import precision_sensitivity
from repro.rtl import Multiplier

FACTORS = (0.6, 0.8, 1.0, 1.2, 1.4, 1.8)
WIDTH = 16


def test_ext_model_sensitivity(benchmark, lib, show):
    component = Multiplier(WIDTH)

    report = benchmark.pedantic(
        precision_sensitivity,
        args=(component, lib, worst_case(10)),
        kwargs={"factors": FACTORS,
                "precisions": range(WIDTH, WIDTH - 9, -1)},
        rounds=1, iterations=1)

    rows = ["dVth scale   K(10y)   extra bits vs nominal"]
    for factor in sorted(report.k_by_factor):
        k = report.k_by_factor[factor]
        extra = ("-" if k is None or report.nominal_k is None
                 else str(report.nominal_k - k))
        rows.append("%9.1fx %7s %10s"
                    % (factor, "-" if k is None else k, extra))
    tol = report.tolerated_overshoot()
    rows.append("nominal K=%s survives model underestimates up to "
                "x%.1f dVth" % (report.nominal_k, tol))
    show("Extension / K sensitivity to BTI-model uncertainty "
         "(16-bit multiplier, 10y WC)", rows)

    assert report.monotone()
    assert report.nominal_k is not None
    assert tol >= 1.0
    # A mildly optimistic model (x0.8) never demands more truncation.
    assert report.k_by_factor[0.8] >= report.nominal_k
    benchmark.extra_info["k_by_factor"] = {
        str(f): k for f, k in report.k_by_factor.items()}
