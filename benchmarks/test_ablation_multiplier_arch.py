"""Ablation — multiplier architecture.

Same decoupling study as the adder ablation, for the three multiplier
families: Wallace/Baugh-Wooley (with CLA or Kogge-Stone final adder),
radix-4 Booth, and the linear carry-save array. Width 16 keeps the
sweep quick; the trends match the 32-bit components used in the figure
benches.
"""

import pytest

from repro.aging import worst_case
from repro.approx import TimedComponentModel
from repro.core import characterize
from repro.rtl import ArrayMultiplier, BoothMultiplier, WallaceMultiplier

WIDTH = 16
VECTORS = 5000
ARCHS = [
    ("wallace-cla", lambda: WallaceMultiplier(WIDTH, final_adder="cla")),
    ("wallace-ks", lambda: WallaceMultiplier(WIDTH, final_adder="ks")),
    ("booth-cla", lambda: BoothMultiplier(WIDTH, final_adder="cla")),
    ("array", lambda: ArrayMultiplier(WIDTH)),
]


def study(factory, lib):
    component = factory()
    entry = characterize(component, lib, scenarios=[worst_case(10)],
                         precisions=range(WIDTH, WIDTH - 7, -1))
    model = TimedComponentModel(component, lib, scenario=worst_case(10))
    operands = component.random_operands(VECTORS, rng=33)
    return {
        "fresh_ps": entry.fresh_delay_ps(),
        "gates": entry.gates[WIDTH],
        "error_rate": model.error_statistics(*operands)["error_rate"],
        "k": entry.required_precision("10y_worst"),
        "delay_per_bit": (entry.fresh_delay_ps()
                          - entry.fresh_ps[WIDTH - 6])
        / entry.fresh_delay_ps() / 6,
    }


def test_ablation_multiplier_architectures(benchmark, lib, show):
    results = benchmark.pedantic(
        lambda: {name: study(make, lib) for name, make in ARCHS},
        rounds=1, iterations=1)

    rows = ["architecture   fresh      gates  err@10yWC  delay/bit  K(10y)"]
    for name, r in results.items():
        rows.append("%-13s %6.1f ps %6d %9.1f%% %9.2f%% %7s"
                    % (name, r["fresh_ps"], r["gates"],
                       100 * r["error_rate"], 100 * r["delay_per_bit"],
                       r["k"]))
    show("Ablation / multiplier architecture (width %d)" % WIDTH, rows)

    # Booth really does halve the partial products -> fewer gates than
    # the Baugh-Wooley array at the same width.
    assert results["booth-cla"]["gates"] < results["array"]["gates"]
    # The KS-final variant is the error-prone one (prefix tail), the
    # CLA-final variant the truncation-responsive one.
    assert results["wallace-ks"]["error_rate"] >= \
        results["wallace-cla"]["error_rate"]
    assert results["wallace-cla"]["delay_per_bit"] > 0.005
    # The slow array is immune at this clock (huge guardband already).
    assert results["array"]["fresh_ps"] > \
        2 * results["wallace-ks"]["fresh_ps"]
    benchmark.extra_info.update(
        {name: {"err": round(100 * r["error_rate"], 2), "k": r["k"]}
         for name, r in results.items()})
