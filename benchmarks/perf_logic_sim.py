#!/usr/bin/env python
"""Benchmark: packed (64-way ``uint64``) vs bytes (``uint8``) logic sim.

Times functional evaluation and activity extraction on the 16-bit
multiplier — the component the paper hits with ~10^6 stimuli per
characterization point — and records the result as
``BENCH_logic_sim.json`` so the perf trajectory of the simulation
engine is tracked over time.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_logic_sim.py --vectors 100000

The script cross-checks that both engines are bit-identical on the
benchmark workload before timing them, times each engine best-of-N,
and measures peak traced memory (NumPy buffers register with
``tracemalloc``) in a separate pass so tracing overhead never pollutes
the timings.
"""

import argparse
import contextlib
import time
import tracemalloc

import numpy as np

import bench_util

from repro.cells import default_library
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.rtl import Multiplier
from repro.sim import (compile_netlist, evaluate, evaluate_packed,
                       operand_stream_bits, simulate_activity)
from repro.synth import synthesize_netlist


def best_time(fn, repeats):
    """Best-of-*repeats* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def traced_peak(fn):
    """Peak traced allocation of one ``fn()`` call in bytes."""
    tracemalloc.start()
    try:
        fn()
        __current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vectors", type=int, default=100000,
                        help="stimulus vectors (default 10^5)")
    parser.add_argument("--width", type=int, default=16,
                        help="multiplier operand width (default 16)")
    parser.add_argument("--effort", default="high",
                        help="synthesis effort (default high)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--out", default="BENCH_logic_sim.json",
                        help="output JSON path")
    parser.add_argument("--trace", default=None,
                        help="also write a Chrome trace of the benchmark "
                             "run (plus a run manifest next to it)")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    tracer = obs_trace.Tracer() if args.trace else None
    with contextlib.ExitStack() as stack:
        registry = stack.enter_context(obs_metrics.scoped())
        if tracer is not None:
            stack.enter_context(obs_trace.capture(tracer))
            stack.enter_context(obs_trace.span(
                "benchmark.logic_sim", vectors=args.vectors,
                width=args.width, effort=args.effort))
        report = _run(args)
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print("trace written to %s (%d spans)" % (args.trace, len(tracer)))
        manifest = obs_manifest.build_manifest(
            "benchmarks/perf_logic_sim.py",
            config={"vectors": args.vectors, "width": args.width,
                    "effort": args.effort, "repeats": args.repeats},
            library=default_library(),
            stages=tracer.totals(),
            metrics=registry.snapshot(),
            duration_s=time.perf_counter() - t_start,
            extra={"benchmark": report},
        )
        manifest_path = obs_manifest.default_manifest_path(args.trace)
        obs_manifest.write_manifest(manifest_path, manifest)
        print("run manifest written to %s" % manifest_path)
    return report


def _run(args):
    lib = default_library()
    component = Multiplier(args.width)
    print("synthesizing %s (effort=%s)..." % (component.name, args.effort))
    netlist = synthesize_netlist(component, lib, effort=args.effort)
    compiled = compile_netlist(netlist, lib)

    rng = np.random.default_rng(2017)
    operands = component.random_operands(args.vectors, rng=rng)
    bits = operand_stream_bits(operands, component.operand_widths)
    print("%d gates, %d nets, %d vectors"
          % (netlist.num_gates, compiled.slots, args.vectors))

    # Correctness gate: never benchmark two engines that disagree.
    sample = bits[:4096]
    if not np.array_equal(evaluate(compiled, sample),
                          evaluate_packed(compiled, sample)):
        raise SystemExit("packed/bytes engines disagree on outputs")
    ref = simulate_activity(netlist, lib, sample, engine="bytes")
    got = simulate_activity(netlist, lib, sample, engine="packed")
    if (ref.signal_probability != got.signal_probability
            or ref.toggle_rate != got.toggle_rate):
        raise SystemExit("packed/bytes engines disagree on activity")

    results = {}
    for label, fn in [
        ("activity_bytes",
         lambda: simulate_activity(netlist, lib, bits, engine="bytes")),
        ("activity_packed",
         lambda: simulate_activity(netlist, lib, bits, engine="packed")),
        ("evaluate_bytes", lambda: evaluate(compiled, bits)),
        ("evaluate_packed", lambda: evaluate_packed(compiled, bits)),
    ]:
        with obs_trace.span("bench." + label, repeats=args.repeats):
            seconds = best_time(fn, args.repeats)
            peak = traced_peak(fn)
        results[label] = {"seconds": seconds, "peak_bytes": peak}
        print("%-18s %8.3f s   peak %7.1f MiB"
              % (label, seconds, peak / 2**20))

    activity_speedup = (results["activity_bytes"]["seconds"]
                        / results["activity_packed"]["seconds"])
    activity_mem_ratio = (results["activity_bytes"]["peak_bytes"]
                          / max(results["activity_packed"]["peak_bytes"], 1))
    evaluate_speedup = (results["evaluate_bytes"]["seconds"]
                        / results["evaluate_packed"]["seconds"])
    print("activity: %.1fx faster, %.1fx less peak memory"
          % (activity_speedup, activity_mem_ratio))
    print("evaluate: %.1fx faster" % evaluate_speedup)

    report = {
        "benchmark": "logic_sim",
        "component": component.name,
        "width": args.width,
        "effort": args.effort,
        "vectors": args.vectors,
        "gates": netlist.num_gates,
        "nets": compiled.slots,
        "repeats": args.repeats,
        "results": results,
        "activity_speedup": activity_speedup,
        "activity_peak_memory_ratio": activity_mem_ratio,
        "evaluate_speedup": evaluate_speedup,
    }
    n_runs = bench_util.append_run(args.out, report)
    print("wrote %s (%d run(s) recorded)" % (args.out, n_runs))
    return report


if __name__ == "__main__":
    main()
