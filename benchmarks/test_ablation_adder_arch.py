"""Ablation — adder architecture vs the two phenomena the paper couples.

The paper's adder both (a) suffers visible timing-error rates when its
guardband is removed and (b) trades precision for delay smoothly enough
that truncation can re-close timing. Generated netlists decouple these:

* Kogge-Stone (log depth, many simultaneously-critical paths): errs
  readily under aging, but truncation barely shortens it;
* group carry-lookahead (graded depth): truncation-responsive, but its
  long carry chains are almost never dynamically sensitized;
* ripple-carry: linear delay (most truncation-responsive) and similarly
  error-quiet.

This bench quantifies that trade — the reason the reproduction uses the
prefix variants for the motivational study and the lookahead variants
for the characterization flow (see DESIGN.md).
"""

import pytest

from repro.aging import worst_case
from repro.approx import TimedComponentModel
from repro.core import characterize
from repro.rtl import (CarryLookaheadAdder, CarrySelectAdder,
                       CarrySkipAdder, KoggeStoneAdder, RippleCarryAdder)

VECTORS = 8000
ARCHS = [("kogge-stone", KoggeStoneAdder),
         ("carry-lookahead", CarryLookaheadAdder),
         ("carry-select", CarrySelectAdder),
         ("carry-skip", CarrySkipAdder),
         ("ripple-carry", RippleCarryAdder)]


def study_architecture(cls, lib):
    component = cls(32)
    entry = characterize(component, lib, scenarios=[worst_case(10)],
                         precisions=range(32, 21, -1))
    model = TimedComponentModel(component, lib, scenario=worst_case(10))
    operands = component.random_operands(VECTORS, rng=9)
    error_rate = model.error_statistics(*operands)["error_rate"]
    k = entry.required_precision("10y_worst")
    fresh = entry.fresh_delay_ps()
    slope = (fresh - entry.fresh_ps[22]) / fresh / 10  # per bit
    return {"fresh_ps": fresh, "error_rate": error_rate, "k": k,
            "delay_per_bit": slope}


def test_ablation_adder_architectures(benchmark, lib, show):
    def run_all():
        return {name: study_architecture(cls, lib)
                for name, cls in ARCHS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = ["architecture      fresh     err@10yWC   delay/bit   K(10y)"]
    for name, r in results.items():
        rows.append("%-16s %6.1f ps %9.1f%% %10.2f%% %8s"
                    % (name, r["fresh_ps"], 100 * r["error_rate"],
                       100 * r["delay_per_bit"], r["k"]))
    show("Ablation / adder architecture", rows)

    ks, cla, rca = (results["kogge-stone"], results["carry-lookahead"],
                    results["ripple-carry"])
    # Speed ordering.
    assert ks["fresh_ps"] < cla["fresh_ps"] < rca["fresh_ps"]
    # The prefix adder is the error-prone one...
    assert ks["error_rate"] > cla["error_rate"]
    assert ks["error_rate"] > 0.005
    # ...and the least truncation-responsive one.
    assert ks["delay_per_bit"] < cla["delay_per_bit"]
    assert cla["delay_per_bit"] <= rca["delay_per_bit"] + 0.01
    # Lookahead/ripple can fully convert the guardband; prefix cannot
    # within the sweep.
    assert cla["k"] is not None and rca["k"] is not None
    benchmark.extra_info.update(
        {name: {"err": r["error_rate"], "k": r["k"]}
         for name, r in results.items()})
