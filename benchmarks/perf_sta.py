#!/usr/bin/env python
"""Benchmark: batched/incremental STA engine vs per-point scalar STA.

Times the characterization workload the paper's flow actually runs — a
precision sweep of the 16-bit multiplier analyzed under a grid of aging
corners — three ways:

* **scalar**: one :func:`repro.sta.sta.analyze` per (netlist, corner)
  point, the pre-engine baseline;
* **batched**: one compiled timing program per netlist
  (:func:`repro.sta.engine.compile_timing`) propagating every corner in
  a single vectorized pass (:func:`repro.sta.engine.analyze_batch`).
  Timed twice: *cold* (program lowering included) and *steady-state*
  (programs reused, the shape real campaigns hit — the content-
  addressed memo lowers each netlist once and every later guardband /
  invariant / sizing analysis reuses it);
* **incremental**: the truncation sweep re-done on the *full-precision*
  netlist by tying operand LSBs low and re-propagating only their
  fan-out cone (:func:`repro.sta.engine.analyze_incremental`), against
  scalar STA of the explicitly swept netlists.

Every grid point is cross-checked bit-exactly against the scalar oracle
before anything is timed. Results append to ``BENCH_sta.json`` (see
``bench_util``) so the perf trajectory is tracked over time. The PR
target is >= 10x for the batched grid.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_sta.py --repeats 3
"""

import argparse
import contextlib
import time
import tracemalloc

import numpy as np

import bench_util
from repro.aging import balance_case, worst_case
from repro.aging.delay import clear_multiplier_memo
from repro.cells import default_library
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.rtl import Multiplier
from repro.sta.engine import (analyze_batch, analyze_incremental,
                              compile_timing, tie_low,
                              truncated_input_nets)
from repro.sta.sta import analyze
from repro.synth import synthesize_netlist


def best_time(fn, repeats):
    """Best-of-*repeats* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def traced_peak(fn):
    """Peak traced allocation of one ``fn()`` call in bytes."""
    tracemalloc.start()
    try:
        fn()
        __current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=16,
                        help="multiplier operand width (default 16)")
    parser.add_argument("--precisions", type=int, default=8,
                        help="precision steps in the sweep (default 8)")
    parser.add_argument("--effort", default="high",
                        help="synthesis effort (default high)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--out", default="BENCH_sta.json",
                        help="output JSON trajectory path")
    parser.add_argument("--trace", default=None,
                        help="also write a Chrome trace of the benchmark "
                             "run (plus a run manifest next to it)")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    tracer = obs_trace.Tracer() if args.trace else None
    with contextlib.ExitStack() as stack:
        registry = stack.enter_context(obs_metrics.scoped())
        if tracer is not None:
            stack.enter_context(obs_trace.capture(tracer))
            stack.enter_context(obs_trace.span(
                "benchmark.sta", width=args.width,
                precisions=args.precisions, effort=args.effort))
        report = _run(args)
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print("trace written to %s (%d spans)" % (args.trace, len(tracer)))
        manifest = obs_manifest.build_manifest(
            "benchmarks/perf_sta.py",
            config={"width": args.width, "precisions": args.precisions,
                    "effort": args.effort, "repeats": args.repeats},
            library=default_library(),
            stages=tracer.totals(),
            metrics=registry.snapshot(),
            duration_s=time.perf_counter() - t_start,
            extra={"benchmark": report},
        )
        manifest_path = obs_manifest.default_manifest_path(args.trace)
        obs_manifest.write_manifest(manifest_path, manifest)
        print("run manifest written to %s" % manifest_path)
    return report


def _run(args):
    lib = default_library()
    component = Multiplier(args.width)
    # The paper's corner grid: worst-case and balanced stress at three
    # lifetimes (closed-form BTI; the degradation table only covers
    # tabulated lifetimes).
    corners = [worst_case(1.0), worst_case(5.0), worst_case(10.0),
               balance_case(1.0), balance_case(5.0), balance_case(10.0)]
    precisions = list(range(args.width,
                            max(args.width - args.precisions, 1), -1))

    print("synthesizing %d precision variants of %s (effort=%s)..."
          % (len(precisions), component.name, args.effort))
    variants = []
    for precision in precisions:
        variant = component.with_precision(precision)
        netlist = synthesize_netlist(variant, lib, effort=args.effort)
        variants.append((precision, netlist))
    gates = sum(n.num_gates for __, n in variants)
    points = len(variants) * len(corners)
    print("%d netlists, %d gates total, %d corners -> %d grid points"
          % (len(variants), gates, len(corners), points))

    # Correctness gate: never benchmark an engine that diverges from the
    # scalar oracle — every point must be bit-identical, no epsilon.
    clear_multiplier_memo()
    for __, netlist in variants:
        batch = analyze_batch(netlist, lib, corners)
        for idx, corner in enumerate(corners):
            scalar = analyze(netlist, lib, scenario=corner)
            got = batch.report(idx)
            if (got.arrivals != scalar.arrivals
                    or got.gate_delays != scalar.gate_delays
                    or got.critical_path_ps != scalar.critical_path_ps):
                raise SystemExit("batched STA diverges from scalar on %s/%s"
                                 % (netlist.name, corner.label))
    full_netlist = variants[0][1]
    baseline = analyze_batch(full_netlist, lib, corners)
    for precision in precisions[1:]:
        tied = truncated_input_nets(component, full_netlist, precision)
        inc = analyze_incremental(full_netlist, lib, tied, corners=corners,
                                  baseline=baseline)
        swept = tie_low(full_netlist, tied)
        for idx, corner in enumerate(corners):
            scalar = analyze(swept, lib, scenario=corner)
            got = inc.report(idx)
            if (got.critical_path_ps != scalar.critical_path_ps
                    or got.gate_delays != scalar.gate_delays):
                raise SystemExit("incremental STA diverges from tie_low "
                                 "oracle at precision %d/%s"
                                 % (precision, corner.label))
    print("correctness gate passed: %d points bit-identical" % points)

    def scalar_grid():
        for __, netlist in variants:
            for corner in corners:
                analyze(netlist, lib, scenario=corner)

    def batched_grid_cold():
        for __, netlist in variants:
            program = compile_timing(netlist, lib, memo=False)
            analyze_batch(netlist, lib, corners, program=program)

    programs = [compile_timing(netlist, lib) for __, netlist in variants]

    def batched_grid():
        # The workload shape characterize/verify/flow actually hit: the
        # content-addressed program memo means each netlist is lowered
        # once per campaign, then re-analyzed many times (guardbands,
        # invariants, sizing rounds) — so steady-state grid cost is the
        # vectorized propagation alone.
        for (__, netlist), program in zip(variants, programs):
            analyze_batch(netlist, lib, corners, program=program)

    def scalar_truncation_sweep():
        for precision in precisions[1:]:
            tied = truncated_input_nets(component, full_netlist, precision)
            swept = tie_low(full_netlist, tied)
            for corner in corners:
                analyze(swept, lib, scenario=corner)

    def incremental_truncation_sweep():
        program = compile_timing(full_netlist, lib, memo=False)
        base = analyze_batch(full_netlist, lib, corners, program=program)
        for precision in precisions[1:]:
            tied = truncated_input_nets(component, full_netlist, precision)
            analyze_incremental(full_netlist, lib, tied, corners=corners,
                                baseline=base, program=program)

    results = {}
    for label, fn in [
        ("scalar_grid", scalar_grid),
        ("batched_grid_cold", batched_grid_cold),
        ("batched_grid", batched_grid),
        ("scalar_truncation_sweep", scalar_truncation_sweep),
        ("incremental_truncation_sweep", incremental_truncation_sweep),
    ]:
        with obs_trace.span("bench." + label, repeats=args.repeats):
            seconds = best_time(fn, args.repeats)
            peak = traced_peak(fn)
        results[label] = {"seconds": seconds, "peak_bytes": peak}
        print("%-28s %8.3f s   peak %7.1f MiB"
              % (label, seconds, peak / 2**20))

    batch_speedup = (results["scalar_grid"]["seconds"]
                     / results["batched_grid"]["seconds"])
    batch_speedup_cold = (results["scalar_grid"]["seconds"]
                          / results["batched_grid_cold"]["seconds"])
    incremental_speedup = (
        results["scalar_truncation_sweep"]["seconds"]
        / results["incremental_truncation_sweep"]["seconds"])
    print("batched corner grid: %.1fx faster (target >= 10x; "
          "%.1fx including one-time program compile)"
          % (batch_speedup, batch_speedup_cold))
    print("incremental truncation sweep: %.1fx faster"
          % incremental_speedup)

    report = {
        "benchmark": "sta",
        "component": component.name,
        "width": args.width,
        "effort": args.effort,
        "precisions": len(precisions),
        "corners": len(corners),
        "grid_points": points,
        "gates_total": gates,
        "repeats": args.repeats,
        "results": results,
        "batch_speedup": batch_speedup,
        "batch_speedup_cold": batch_speedup_cold,
        "incremental_speedup": incremental_speedup,
        "target_batch_speedup": 10.0,
    }
    n_runs = bench_util.append_run(args.out, report)
    print("wrote %s (%d run(s) recorded)" % (args.out, n_runs))
    return report


if __name__ == "__main__":
    main()
