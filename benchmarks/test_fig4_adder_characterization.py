"""Fig. 4 — characterizing the 32-bit adder: precision vs aged delay.

Paper's series: delays of the adder at precisions 32..22 under noAging /
1y worst / 10y worst / 10y actual (normal dist) / 10y actual (IDCT
inputs); ~150-185 ps; errors disappear once the aged curve dips below
the fresh full-precision constraint. Reducing precision to ~24 bits
covers 1 year, ~22 bits covers 10 years; actual-case aging demands a
smaller reduction, and the two actual-case stimuli agree.
"""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.approx import RecordingArithmetic
from repro.core import ActualCaseSpec, characterize
from repro.media import TransformCodec, make_image
from repro.rtl import CarrySelectAdder

PRECISIONS = range(32, 19, -1)
STIMULUS_VECTORS = 3000


def idct_adder_operands(limit):
    """Adder operand streams recorded from a live decoding IDCT."""
    recorder = RecordingArithmetic()
    TransformCodec(decode_arithmetic=recorder).roundtrip(
        make_image("foreman", 64))
    return recorder.recorded_add_stream(limit=limit)


def test_fig4_adder_characterization(benchmark, lib, show, approx_store):
    adder = CarrySelectAdder(32)
    nd_ops = adder.random_operands(STIMULUS_VECTORS, rng=41)
    idct_ops = idct_adder_operands(STIMULUS_VECTORS)
    scenarios = [worst_case(1), worst_case(10),
                 ActualCaseSpec(10, "actual_nd", tuple(nd_ops)),
                 ActualCaseSpec(10, "actual_idct", tuple(idct_ops))]

    entry = benchmark.pedantic(
        characterize, args=(adder, lib),
        kwargs={"scenarios": scenarios, "precisions": PRECISIONS},
        rounds=1, iterations=1)
    approx_store.add(entry)

    labels = ["1y_worst", "10y_worst", "10y_actual_nd", "10y_actual_idct"]
    rows = ["prec   fresh " + "".join("%12s" % lbl for lbl in labels)]
    for p in entry.precisions:
        rows.append("%4d  %6.1f" % (p, entry.fresh_ps[p])
                    + "".join("%12.1f" % entry.aged_ps[(p, lbl)]
                              for lbl in labels))
    ks = {lbl: entry.required_precision(lbl) for lbl in labels}
    rows.append("required precision K: %s" % ks)
    rows.append("paper: K=24 @1y WC, K=22 @10y WC, K=24 @10y actual; "
                "delays 150-185 ps")
    show("Fig. 4 / 32-bit adder characterization", rows)

    constraint = entry.fresh_delay_ps()
    # Shape assertions.
    assert 60.0 < constraint < 300.0          # paper ballpark (ps)
    assert ks["10y_worst"] is not None
    assert ks["10y_worst"] <= ks["1y_worst"]   # longer life, deeper cut
    # Actual case demands no more truncation than worst case.
    assert ks["10y_actual_nd"] >= ks["10y_worst"]
    # The paper's sufficiency claim: ND and application stimuli agree.
    assert abs(ks["10y_actual_nd"] - ks["10y_actual_idct"]) <= 1
    # Aged delay curves are ordered: fresh < actual <= worst.
    for p in entry.precisions:
        assert entry.fresh_ps[p] < entry.aged_ps[(p, "10y_actual_nd")]
        assert entry.aged_ps[(p, "10y_actual_nd")] <= \
            entry.aged_ps[(p, "10y_worst")] + 1e-9
    benchmark.extra_info["required_precision"] = {
        k: v for k, v in ks.items()}
