"""Extension — temperature sensitivity of the required precision.

BTI is thermally activated, so the guardband (and hence the precision a
guardband-free design must give up) depends on the junction temperature
the lifetime is served at. The paper characterizes at a single corner;
this extension sweeps the Arrhenius axis — the released degradation
libraries [9] ship exactly such per-temperature corners.
"""

import pytest

from repro.aging import DEFAULT_BTI, worst_case
from repro.core import characterize
from repro.rtl import Multiplier

TEMPERATURES_K = (298.0, 330.0, 358.0, 398.0)
WIDTH = 16


def test_ext_temperature_sweep(benchmark, lib, show):
    component = Multiplier(WIDTH)

    def sweep():
        results = {}
        for temperature in TEMPERATURES_K:
            bti = DEFAULT_BTI.at_temperature(temperature)
            entry = characterize(component, lib,
                                 scenarios=[worst_case(10)],
                                 precisions=range(WIDTH, WIDTH - 8, -1),
                                 bti=bti)
            results[temperature] = {
                "dvth_mv": 1e3 * bti.delta_vth(1.0, 10.0),
                "guardband_ps": entry.guardband_ps("10y_worst"),
                "k": entry.required_precision("10y_worst"),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["temp      dVth@10y   guardband   K(10y)  dropped bits"]
    for temperature, r in results.items():
        k_text = "-" if r["k"] is None else str(r["k"])
        drop = "-" if r["k"] is None else str(WIDTH - r["k"])
        rows.append("%5.0f K  %7.1f mV %8.1f ps %7s %9s"
                    % (temperature, r["dvth_mv"], r["guardband_ps"],
                       k_text, drop))
    rows.append("hotter parts age faster (Arrhenius) -> deeper precision "
                "cuts for the same lifetime")
    show("Extension / temperature sensitivity (16-bit multiplier, "
         "10y WC)", rows)

    shifts = [r["dvth_mv"] for r in results.values()]
    guardbands = [r["guardband_ps"] for r in results.values()]
    assert shifts == sorted(shifts)
    assert guardbands == sorted(guardbands)
    ks = [r["k"] for r in results.values() if r["k"] is not None]
    assert ks == sorted(ks, reverse=True)     # hotter -> smaller K
    # The coolest corner needs a strictly shallower cut than the hottest.
    coolest = results[TEMPERATURES_K[0]]["k"]
    hottest = results[TEMPERATURES_K[-1]]["k"]
    if coolest is not None and hottest is not None:
        assert coolest >= hottest
    benchmark.extra_info.update(
        {"%gK" % t: r["k"] for t, r in results.items()})
