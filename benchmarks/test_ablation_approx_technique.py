"""Ablation — approximation technique: LSB truncation vs lower-OR (LOA).

The paper picks truncation "without loss of generality" and stresses
that any precision/delay-scalable approximation plugs into the flow.
This bench runs the *same* characterization machinery on a classic
alternative — the lower-part-OR adder — and compares the accuracy each
technique delivers at the precision the 10-year worst-case scenario
forces on it.
"""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.core import characterize
from repro.rtl import Adder, LowerOrAdder, wrap_signed

WIDTH = 16
VECTORS = 20000


def test_ablation_truncation_vs_loa(benchmark, lib, show):
    techniques = {"truncation": Adder(WIDTH), "lower-OR": LowerOrAdder(WIDTH)}

    def run_study():
        results = {}
        rng = np.random.default_rng(55)
        for name, component in techniques.items():
            entry = characterize(component, lib,
                                 scenarios=[worst_case(10)],
                                 precisions=range(WIDTH, WIDTH - 9, -1))
            k = entry.required_precision("10y_worst")
            reduced = component.with_precision(k)
            a, b = reduced.random_operands(VECTORS, rng=rng)
            err = np.abs(wrap_signed(reduced.exact(a, b)
                                     - reduced.approximate(a, b), WIDTH))
            results[name] = {
                "k": k,
                "fresh_full": entry.fresh_delay_ps(),
                "fresh_reduced": entry.fresh_ps[k],
                "mean_err": float(err.mean()),
                "max_err": int(err.max()),
                "bound": reduced.max_error_bound(),
            }
        return results

    results = benchmark.pedantic(run_study, rounds=1, iterations=1)

    rows = ["technique    K    delay(full->K)     mean|err|  max|err|  bound"]
    for name, r in results.items():
        rows.append("%-11s %3d  %6.1f -> %6.1f ps %9.2f %8d %6d"
                    % (name, r["k"], r["fresh_full"], r["fresh_reduced"],
                       r["mean_err"], r["max_err"], r["bound"]))
    rows.append("both characterized by the unmodified Section-IV flow")
    show("Ablation / approximation technique @10y worst case", rows)

    trunc, loa = results["truncation"], results["lower-OR"]
    # Both techniques absorb the guardband...
    assert trunc["k"] is not None and loa["k"] is not None
    # ...their errors respect their deterministic bounds...
    assert trunc["max_err"] <= trunc["bound"]
    assert loa["max_err"] <= loa["bound"]
    # ...and LOA buys better mean accuracy at its operating point.
    assert loa["mean_err"] < trunc["mean_err"]
    benchmark.extra_info.update(
        {name: {"k": r["k"], "mean_err": round(r["mean_err"], 2)}
         for name, r in results.items()})
