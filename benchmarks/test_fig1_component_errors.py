"""Fig. 1 — aging-induced error rates of 32-bit adder and multiplier.

Paper's series (percentage of erroneous outputs under normal-distribution
stimuli, clocked at the fresh f_max):

    adder:      balance 1y ~13%, 10y ~20% | worst 1y ~20%, 10y ~28%
    multiplier: balance 1y ~2%,  10y ~4%  | worst 1y ~4%,  10y ~8%

We reproduce the *shape*: zero errors when fresh, error rates growing
with lifetime and with stress (worst > balance). The adder is the
carry-select architecture — like the paper's synthesized adder it both
errs under aging *and* responds to truncation (see the adder ablation);
the multiplier uses the prefix-final-adder variant whose near-critical
path population drives the motivational hazard.
"""

import pytest

from repro.aging import balance_case, worst_case
from repro.approx import TimedComponentModel
from repro.rtl import CarrySelectAdder, WallaceMultiplier

VECTORS = 20000
SCENARIOS = [("fresh", None),
             ("1y_balance", balance_case(1)),
             ("10y_balance", balance_case(10)),
             ("1y_worst", worst_case(1)),
             ("10y_worst", worst_case(10))]


def measure_component(component, lib, operands):
    rates = {}
    for label, scenario in SCENARIOS:
        model = TimedComponentModel(component, lib, scenario=scenario)
        rates[label] = model.error_statistics(*operands)["error_rate"]
    return rates


@pytest.mark.parametrize("component_cls,paper_series", [
    (CarrySelectAdder, "paper adder: bal 13%/20%, worst 20%/28%"),
    (WallaceMultiplier, "paper mult:  bal  2%/ 4%, worst  4%/ 8%"),
])
def test_fig1_error_rates(benchmark, lib, show, component_cls,
                          paper_series):
    if component_cls is WallaceMultiplier:
        component = WallaceMultiplier(32, final_adder="ks")
        vectors = VECTORS // 2
    else:
        component = component_cls(32)
        vectors = VECTORS
    operands = component.random_operands(vectors, rng=2017)

    rates = benchmark.pedantic(measure_component,
                               args=(component, lib, operands),
                               rounds=1, iterations=1)

    show("Fig. 1 / %s (%d vectors)" % (component.name, vectors),
         ["%-12s error rate %6.2f%%" % (label, 100 * rate)
          for label, rate in rates.items()] + [paper_series])

    # Shape assertions: clean when fresh; grows with lifetime and stress.
    assert rates["fresh"] == 0.0
    assert rates["10y_worst"] > 0.0
    assert rates["10y_worst"] >= rates["1y_worst"]
    assert rates["10y_balance"] >= rates["1y_balance"]
    assert rates["10y_worst"] >= rates["10y_balance"]
    benchmark.extra_info.update({k: 100 * v for k, v in rates.items()})
