"""Ablation — stress-annotation granularity.

How much precision does each stress model cost? Worst-case (S=100%
everywhere) guarantees error-free lifetime but demands the deepest cut;
balanced (S=50%) and actual-case (per-gate, from simulated activity)
annotations recover precision at the price of losing the guarantee
(the paper's Section IV discussion).
"""

import pytest

from repro.aging import balance_case, worst_case
from repro.core import ActualCaseSpec, characterize
from repro.rtl import Multiplier

PRECISIONS = range(32, 21, -1)


def test_ablation_stress_granularity(benchmark, lib, show):
    component = Multiplier(32)
    operands = component.random_operands(3000, rng=77)
    scenarios = [worst_case(10), balance_case(10),
                 ActualCaseSpec(10, "actual_nd", tuple(operands))]

    entry = benchmark.pedantic(
        characterize, args=(component, lib),
        kwargs={"scenarios": scenarios, "precisions": PRECISIONS},
        rounds=1, iterations=1)

    labels = ["10y_worst", "10y_balance", "10y_actual_nd"]
    rows = ["stress model     aged CP @32b   guardband   K(10y)  kept bits"]
    ks = {}
    for label in labels:
        ks[label] = entry.required_precision(label)
        rows.append("%-15s %9.1f ps %9.1f ps %7s %8s"
                    % (label, entry.aged_ps[(32, label)],
                       entry.guardband_ps(label), ks[label],
                       "-" if ks[label] is None else str(ks[label])))
    rows.append("fresh constraint: %.1f ps" % entry.fresh_delay_ps())
    rows.append("note: only worst-case guarantees zero timing errors "
                "for the whole lifetime")
    show("Ablation / stress-annotation granularity (32-bit multiplier)",
         rows)

    # Conservatism ordering: worst >= balance/actual in demanded cut.
    assert entry.aged_ps[(32, "10y_worst")] >= \
        entry.aged_ps[(32, "10y_balance")]
    assert entry.aged_ps[(32, "10y_worst")] >= \
        entry.aged_ps[(32, "10y_actual_nd")]
    assert ks["10y_worst"] <= ks["10y_balance"]
    assert ks["10y_worst"] <= ks["10y_actual_nd"]
    benchmark.extra_info["K"] = ks
