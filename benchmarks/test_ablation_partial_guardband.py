"""Ablation — partial guardbands: the designer's when/where/how-much knob.

The paper argues the characterization library lets designers choose any
point between "full guardband, full precision" and "no guardband, full
truncation". This bench sweeps that frontier for the IDCT multiplier:
for each retained guardband fraction, look up the precision that covers
the *rest* of the aging, and report the resulting frequency and quality.
"""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.approx import ComponentArithmetic
from repro.core import characterize
from repro.media import TransformCodec, make_image
from repro.quality import psnr_db
from repro.rtl import Multiplier

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_ablation_partial_guardband(benchmark, lib, show, approx_store):
    component = Multiplier(32)
    entry = approx_store.get(component)
    if entry is None or "10y_worst" not in entry.scenario_labels:
        entry = approx_store.add(characterize(
            component, lib, scenarios=[worst_case(10)],
            precisions=range(32, 21, -1)))

    image = make_image("akiyo", 64)
    fresh_quality = psnr_db(image, TransformCodec().roundtrip(image))

    def sweep():
        frontier = []
        full_gb = entry.guardband_ps("10y_worst")
        for fraction in FRACTIONS:
            clock = entry.fresh_delay_ps() + fraction * full_gb
            k = entry.required_precision("10y_worst", target_ps=clock)
            quality = fresh_quality
            if k is not None and k < 32:
                arithmetic = ComponentArithmetic(
                    mul_component=component.with_precision(k))
                quality = psnr_db(image, TransformCodec(
                    decode_arithmetic=arithmetic).roundtrip(image))
            frontier.append((fraction, clock, k, quality))
        return frontier

    frontier = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["guardband   clock        K     PSNR    frequency vs full-GB"]
    full_clock = frontier[-1][1]
    for fraction, clock, k, quality in frontier:
        rows.append("%6.0f%%   %7.1f ps  %4s  %5.1f dB  %+5.1f%%"
                    % (100 * fraction, clock, k, quality,
                       100 * (full_clock / clock - 1)))
    show("Ablation / partial guardband frontier (IDCT multiplier, "
         "10y WC)", rows)

    # Monotone frontier: more guardband -> higher precision -> higher
    # (or equal) quality, but a slower clock.
    precisions = [k for __, __, k, __ in frontier]
    qualities = [q for __, __, __, q in frontier]
    clocks = [c for __, c, __, __ in frontier]
    assert all(a <= b for a, b in zip(precisions, precisions[1:]))
    assert all(a <= b + 0.5 for a, b in zip(qualities, qualities[1:]))
    assert all(a < b for a, b in zip(clocks, clocks[1:]))
    # End points: no guardband still yields acceptable quality; full
    # guardband needs no approximation at all.
    assert qualities[0] > 30.0
    assert precisions[-1] == 32
    benchmark.extra_info["frontier"] = [
        (f, round(c, 1), k, round(q, 1)) for f, c, k, q in frontier]
