"""Fig. 8(c) — savings versus aging-aware synthesis [4].

Paper's series (normalized to the aging-aware-synthesis baseline):
+11% frequency, -14% leakage, -4% dynamic power, -13% energy, -13% area.

Both designs must survive 10 years of worst-case aging: the baseline
hardens gates against aged timing (area/power overhead + residual
guardband), ours swaps the guardband for precision. Our deeper precision
cut (8 bits vs the paper's 3) yields accordingly larger savings; the
direction of every ratio is the reproduced result.
"""

import pytest

from repro.aging import worst_case
from repro.core import compare_with_baseline


def test_fig8c_savings_vs_baseline(benchmark, lib, show, idct_flow):
    micro, report = idct_flow

    comparison = benchmark.pedantic(
        compare_with_baseline,
        args=(micro, report.outcome, lib, worst_case(10)),
        kwargs={"activity_count": 512},
        rounds=1, iterations=1)

    ratios = comparison.ratios
    paper = {"frequency": 1.11, "leakage": 0.86, "dynamic": 0.96,
             "energy": 0.87, "area": 0.87}
    rows = ["metric      ours/baseline   paper"]
    for key in ("frequency", "leakage", "dynamic", "energy", "area"):
        rows.append("%-10s %10.3f %11.2f" % (key, ratios[key], paper[key]))
    rows.append("baseline residual guardband: %.1f ps"
                % comparison.baseline_guardband_ps)
    rows.append("ours:     %.1f um^2, %.1f nW leak, %.2f uW dynamic"
                % (comparison.ours.area_um2, comparison.ours.leakage_nw,
                   comparison.ours.dynamic_uw))
    rows.append("baseline: %.1f um^2, %.1f nW leak, %.2f uW dynamic"
                % (comparison.baseline.area_um2,
                   comparison.baseline.leakage_nw,
                   comparison.baseline.dynamic_uw))
    show("Fig. 8(c) / efficiency vs aging-aware synthesis [4]", rows)

    # Shape: every axis improves in the paper's direction.
    assert ratios["frequency"] >= 1.0
    assert ratios["leakage"] < 1.0
    assert ratios["dynamic"] < 1.0
    assert ratios["energy"] < 1.0
    assert ratios["area"] < 1.0
    # Magnitudes stay in a plausible band (not 10x off the paper).
    assert ratios["frequency"] < 1.5
    assert ratios["area"] > 0.5
    benchmark.extra_info.update({k: round(v, 4) for k, v in ratios.items()})
