"""Fig. 8(b) — PSNR of nine images under aging-induced approximations.

Paper's series (10 years, worst case; IDCT multiplier reduced): average
PSNR drops by ~8 dB, stays above 30 dB for every sequence except
'mobile' (28 dB). RTL-level simulation takes seconds per image instead
of the 4-day gate-level simulation the technique replaces.
"""

import numpy as np
import pytest

from repro.approx import ComponentArithmetic
from repro.media import IMAGE_NAMES, TransformCodec, make_image
from repro.quality import ACCEPTABLE_PSNR_DB, psnr_db
from repro.rtl import Multiplier

SIZE = 64


def test_fig8b_psnr_per_image(benchmark, lib, show, idct_flow):
    __, report = idct_flow
    precision = report.outcome.decisions["mult"].chosen_precision
    arithmetic = ComponentArithmetic(
        mul_component=Multiplier(32, precision=precision))

    def decode_all():
        quality = {}
        for name in IMAGE_NAMES:
            image = make_image(name, SIZE)
            fresh = psnr_db(image, TransformCodec().roundtrip(image))
            approx = psnr_db(image, TransformCodec(
                decode_arithmetic=arithmetic).roundtrip(image))
            quality[name] = (fresh, approx)
        return quality

    quality = benchmark.pedantic(decode_all, rounds=1, iterations=1)

    rows = ["IDCT multiplier at %d of 32 bits" % precision,
            "image        fresh     approximated"]
    for name, (fresh, approx) in quality.items():
        rows.append("%-10s %6.1f dB %9.1f dB" % (name, fresh, approx))
    fresh_avg = np.mean([v[0] for v in quality.values()])
    approx_avg = np.mean([v[1] for v in quality.values()])
    rows.append("average    %6.1f dB %9.1f dB  (drop %.1f dB)"
                % (fresh_avg, approx_avg, fresh_avg - approx_avg))
    rows.append("paper: -8 dB average, all >= 30 dB except mobile (28)")
    show("Fig. 8(b) / PSNR under aging-induced approximations", rows)

    # Shape assertions (paper: modest, bounded quality cost).
    drop = fresh_avg - approx_avg
    assert 3.0 <= drop <= 15.0
    assert approx_avg >= ACCEPTABLE_PSNR_DB
    assert min(v[1] for v in quality.values()) > 25.0
    benchmark.extra_info["average_drop_db"] = round(float(drop), 2)
