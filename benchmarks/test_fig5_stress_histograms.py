"""Fig. 5 — stress-factor distributions under two stimulus sets.

Paper's claim: the per-transistor stress factors extracted from
normal-distribution stimuli and from IDCT application inputs have very
similar distributions, so the aging-induced delay (and hence the
required precision) matches — artificial stimuli suffice for
characterization.

We histogram per-gate stress factors of the 32-bit multiplier under both
stimuli and compare the resulting aged critical-path delays.
"""

import numpy as np
import pytest

from repro.aging import AgingScenario
from repro.approx import RecordingArithmetic
from repro.media import TransformCodec, make_image
from repro.rtl import Multiplier
from repro.sim import extract_stress, operand_stream_bits
from repro.sta import critical_path_delay
from repro.synth import synthesize_netlist

VECTORS = 3000
BINS = 10


def idct_mul_operands(limit):
    recorder = RecordingArithmetic()
    TransformCodec(decode_arithmetic=recorder).roundtrip(
        make_image("akiyo", 64))
    return recorder.recorded_mul_stream(limit=limit)


def test_fig5_stress_distributions(benchmark, lib, show):
    mult = Multiplier(32)
    netlist = synthesize_netlist(mult, lib)
    nd_ops = mult.random_operands(VECTORS, rng=5)
    idct_ops = idct_mul_operands(VECTORS)

    def extract_both():
        annotations = {}
        for label, ops in (("normal", nd_ops), ("idct", idct_ops)):
            bits = operand_stream_bits(ops, mult.operand_widths)
            annotations[label] = extract_stress(netlist, lib, bits,
                                                label=label)
        return annotations

    annotations = benchmark.pedantic(extract_both, rounds=1, iterations=1)

    histograms = {}
    aged = {}
    rows = []
    for label, annotation in annotations.items():
        samples = np.asarray(annotation.stress_samples())
        hist, __ = np.histogram(samples, bins=BINS, range=(0, 1))
        histograms[label] = hist / hist.sum()
        aged[label] = critical_path_delay(
            netlist, lib, scenario=AgingScenario(10.0, annotation))
        rows.append("%-7s mean S=%.3f  aged CP %.1f ps  hist %s"
                    % (label, samples.mean(), aged[label],
                       np.round(histograms[label], 2).tolist()))
    fresh = critical_path_delay(netlist, lib)
    rows.append("fresh CP %.1f ps" % fresh)
    rows.append("paper: both histograms similar -> identical precision "
                "reduction")
    show("Fig. 5 / multiplier stress factors (%d vectors)" % VECTORS, rows)

    # The consequence the paper cares about: aged delays (and hence the
    # derived precision) under the two stimuli agree within a few percent.
    assert aged["normal"] == pytest.approx(aged["idct"], rel=0.05)
    assert aged["normal"] > fresh
    # Both distributions are interior (no stimulus pins all gates at
    # full stress the way the worst-case bound does).
    for hist in histograms.values():
        assert hist[1:-1].sum() > 0.05
    benchmark.extra_info["aged_cp_ps"] = {k: round(v, 2)
                                          for k, v in aged.items()}
