"""Shared helpers for the ``benchmarks/`` scripts.

The benchmark files (``BENCH_*.json``) are perf *trajectories*, not
snapshots: every run appends a machine-stamped entry instead of
overwriting the file, so regressions can be traced across commits and
hosts. Files use the ``repro.bench/2`` schema::

    {"schema": "repro.bench/2", "benchmark": "<name>", "runs": [...]}

Legacy single-run files (schema 1 was the bare run dict) are wrapped
into a trajectory on first append.
"""

import datetime
import json
import os
import platform

import numpy as np

SCHEMA = "repro.bench/2"


def machine_stamp():
    """Toolchain + host identity attached to every benchmark run."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "processor": platform.processor() or platform.machine(),
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
    }


def load_trajectory(path):
    """Load a ``BENCH_*.json`` as ``{"benchmark", "runs": [...]}``.

    Legacy single-run documents come back as one-entry trajectories;
    shared with ``repro bench-report`` so both read the same shape.
    """
    from repro.bench_report import load_trajectory as _load

    return _load(path)


def append_run(path, run):
    """Append *run* to the trajectory at *path* (created if missing).

    The run dict gets a ``machine`` stamp (:func:`machine_stamp`) unless
    it already carries one. Returns the number of runs now recorded.
    """
    run = dict(run)
    run.setdefault("machine", machine_stamp())
    benchmark = run.get("benchmark", "unknown")
    doc = {"schema": SCHEMA, "benchmark": benchmark, "runs": []}
    if os.path.exists(path):
        with open(path) as handle:
            existing = json.load(handle)
        if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
            doc = existing
        elif isinstance(existing, dict):
            # Legacy single-run file: keep it as the first trajectory
            # point rather than discarding the measurement.
            doc["benchmark"] = existing.get("benchmark", benchmark)
            doc["runs"] = [existing]
    doc["runs"].append(run)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(doc["runs"])
