"""Shared fixtures for the per-figure benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation
and prints the measured series next to the paper's reported values
(EXPERIMENTS.md records the comparison). Expensive shared artifacts (the
IDCT flow, characterizations) are session-scoped.
"""

import os

import numpy as np
import pytest

from repro.aging import worst_case
from repro.cells import default_library
from repro.core import AgingApproximationLibrary, remove_guardband
from repro.core import cache as cache_mod
from repro.rtl import idct_microarchitecture


@pytest.fixture(scope="session", autouse=True)
def characterization_cache(tmp_path_factory):
    """Session-wide ambient result cache for every characterization.

    Figures that re-characterize the same components hit the cache
    instead of re-synthesizing. Point ``REPRO_CACHE_DIR`` at a
    persistent directory to also reuse results across benchmark runs;
    by default a throwaway per-session directory is used.
    """
    root = os.environ.get(cache_mod.CACHE_DIR_ENV) \
        or tmp_path_factory.mktemp("repro-cache")
    with cache_mod.cache_enabled(str(root)) as cache:
        yield cache


@pytest.fixture(scope="session")
def lib():
    return default_library()


@pytest.fixture(scope="session")
def approx_store():
    """Session-wide store of characterizations (filled on demand)."""
    return AgingApproximationLibrary()


@pytest.fixture(scope="session")
def idct_flow(lib, approx_store):
    """The Section-V flow applied to the 32-bit IDCT (Figs. 8a-8c)."""
    from repro.aging import balance_case
    micro = idct_microarchitecture(width=32)
    report = remove_guardband(
        micro, lib, worst_case(10),
        report_scenarios=[worst_case(1), balance_case(10)],
        approx_library=approx_store)
    return micro, report


@pytest.fixture()
def show(capsys):
    """Print a results table to the real terminal (bypasses capture)."""
    def emit(title, lines):
        with capsys.disabled():
            print()
            print("  " + title)
            print("  " + "-" * max(8, len(title)))
            for line in lines:
                print("  " + line)
    return emit
