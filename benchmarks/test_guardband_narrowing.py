"""Section IV/VI text numbers — guardband narrowing per truncated bit.

Paper's quotes:
  * adder: "reducing the precision by merely 2 bits allows us to narrow
    the required guardband by 31%"; 1y needs ~6-8 dropped bits, 10y ~8-10.
  * multiplier/MAC: "reducing the precision by only 1 bit results in
    narrowing the guardband by 29% and 80% respectively, after 10 years".

This bench tabulates narrowing-per-bit for all three components and
checks the qualitative ordering the paper reports: the prefix-heavy
adder needs deeper cuts than the multiplier-style components per percent
of guardband removed.
"""

import pytest

from repro.aging import worst_case
from repro.core import characterize
from repro.rtl import Adder, Multiplier, MultiplyAccumulate


def test_guardband_narrowing_table(benchmark, lib, show, approx_store):
    components = [Adder(32), Multiplier(32), MultiplyAccumulate(32)]

    def characterize_all():
        entries = {}
        for component in components:
            cached = approx_store.get(component)
            if cached is None or "10y_worst" not in cached.scenario_labels:
                cached = approx_store.add(characterize(
                    component, lib,
                    scenarios=[worst_case(1), worst_case(10)],
                    precisions=range(32, 21, -1)))
            entries[component.family] = cached
        return entries

    entries = benchmark.pedantic(characterize_all, rounds=1, iterations=1)

    rows = ["component    1-bit    2-bit    4-bit    K(1y)  K(10y)"]
    for family, entry in entries.items():
        rows.append("%-11s %5.0f%%  %6.0f%%  %6.0f%%  %6s %6s"
                    % (family,
                       100 * entry.guardband_narrowing("10y_worst", 31),
                       100 * entry.guardband_narrowing("10y_worst", 30),
                       100 * entry.guardband_narrowing("10y_worst", 28),
                       entry.required_precision("1y_worst"),
                       entry.required_precision("10y_worst")))
    rows.append("paper: adder 2 bits -> 31%; mult 1 bit -> 29%, "
                "2 bits -> 79%; MAC 1 bit -> 80%")
    show("Guardband narrowing per truncated bit (10y worst case)", rows)

    for family, entry in entries.items():
        # A 4-bit reduction always removes a large share of the guardband.
        assert entry.guardband_narrowing("10y_worst", 28) > 0.3, family
        # And the full sweep can remove it entirely.
        assert entry.required_precision("10y_worst") is not None, family
    # Different components trade precision for guardband at different
    # rates (paper Section IV: "the impact of aging can be quite
    # different from one RTL component to another").
    one_bit = {f: e.guardband_narrowing("10y_worst", 31)
               for f, e in entries.items()}
    assert max(one_bit.values()) - min(one_bit.values()) > 0.10
    benchmark.extra_info["K_10y"] = {
        f: e.required_precision("10y_worst") for f, e in entries.items()}
