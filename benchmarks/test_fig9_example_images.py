"""Fig. 9 — example images after 10 years of worst-case aging.

Paper's series: salesman 36 dB, mobile 28 dB, foreman 30 dB,
grandmother 34 dB — all still visually good despite a decade of
guardband-free operation; 'mobile' (dense texture) is the weakest.
"""

import pytest

from repro.approx import ComponentArithmetic
from repro.media import TransformCodec, make_image
from repro.quality import psnr_db
from repro.rtl import Multiplier

PAPER_VALUES = {"salesman": 36, "mobile": 28, "foreman": 30, "grand": 34}
SIZE = 64


def test_fig9_example_images(benchmark, lib, show, idct_flow):
    __, report = idct_flow
    precision = report.outcome.decisions["mult"].chosen_precision
    arithmetic = ComponentArithmetic(
        mul_component=Multiplier(32, precision=precision))
    codec = TransformCodec(decode_arithmetic=arithmetic)

    def decode_examples():
        return {name: psnr_db(make_image(name, SIZE),
                              codec.roundtrip(make_image(name, SIZE)))
                for name in PAPER_VALUES}

    quality = benchmark.pedantic(decode_examples, rounds=1, iterations=1)

    rows = ["image        measured   paper"]
    for name, value in quality.items():
        rows.append("%-10s %7.1f dB %5d dB"
                    % (name, value, PAPER_VALUES[name]))
    show("Fig. 9 / example images @ 10y worst-case approximations", rows)

    # All four images stay usable (paper: 28-36 dB).
    for name, value in quality.items():
        assert value > 25.0, name
    # The texture-heavy images are the weakest, as in the paper.
    assert min(quality, key=quality.get) in ("mobile", "foreman",
                                             "salesman")
    benchmark.extra_info.update({k: round(v, 2)
                                 for k, v in quality.items()})
