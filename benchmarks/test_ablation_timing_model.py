"""Ablation — glitch-propagation model of the timed simulator.

The reproduction's timing-error magnitudes depend on how activity is
propagated through gates. Three models bracket the truth:

* ``optimistic`` — only settled transitions travel (no glitches);
* ``sensitization`` — Boolean-difference static sensitization (default,
  validated against the event-driven simulator);
* ``pessimistic`` — all input activity travels (approaches static STA).

The event-driven transport-delay simulator provides the ground truth on
a sample.
"""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.rtl import KoggeStoneAdder
from repro.sim import EventSimulator, TimedSimulator, int_to_bits
from repro.sta import critical_path_delay
from repro.synth import synthesize_netlist

VECTORS = 6000
EVENT_SAMPLE = 250


def test_ablation_glitch_models(benchmark, lib, show):
    component = KoggeStoneAdder(32)
    netlist = synthesize_netlist(component, lib)
    t_clock = critical_path_delay(netlist, lib)
    scenario = worst_case(10)
    a, b = component.random_operands(VECTORS, rng=13)
    bits = np.concatenate([int_to_bits(a, 32), int_to_bits(b, 32)],
                          axis=1)

    def run_models():
        rates = {}
        for model in TimedSimulator.GLITCH_MODELS:
            sim = TimedSimulator(netlist, lib, t_clock, scenario=scenario,
                                 glitch_model=model)
            rates[model] = sim.run_stream(bits).error_rate
        return rates

    rates = benchmark.pedantic(run_models, rounds=1, iterations=1)

    # Ground truth on a sample of consecutive vectors.
    event = EventSimulator(netlist, lib, scenario=scenario)
    pis = netlist.primary_inputs
    errors = 0
    for i in range(1, EVENT_SAMPLE):
        sampled, settled, __ = event.sample_outputs(
            dict(zip(pis, bits[i - 1].tolist())),
            dict(zip(pis, bits[i].tolist())), t_clock)
        errors += sampled != settled
    event_rate = errors / (EVENT_SAMPLE - 1)

    rows = ["model            error rate @10y WC"]
    for model, rate in rates.items():
        rows.append("%-15s %9.2f%%" % (model, 100 * rate))
    rows.append("%-15s %9.2f%%  (transport-delay ground truth, %d "
                "vectors)" % ("event-driven", 100 * event_rate,
                              EVENT_SAMPLE - 1))
    show("Ablation / timed-simulator glitch model (32-bit prefix adder)",
         rows)

    # Bracketing: optimistic <= sensitization <= pessimistic.
    assert rates["optimistic"] <= rates["sensitization"]
    assert rates["sensitization"] <= rates["pessimistic"]
    # The default model is the one closest to the event-driven truth.
    gaps = {m: abs(r - event_rate) for m, r in rates.items()}
    assert gaps["sensitization"] == min(gaps.values())
    benchmark.extra_info.update(
        {m: round(100 * r, 2) for m, r in rates.items()})
    benchmark.extra_info["event_driven"] = round(100 * event_rate, 2)
