"""Extension — the anatomy of aging-induced timing errors.

Where do the errors the paper warns about actually live? This bench
dissects the guardband-free multiplier at 10 years worst case:

* the *timing wall*: how much of the netlist sits near the critical
  path (why naive removal is dangerous at all),
* per-output-bit violation rates: which product bits go wrong first,
* error magnitudes: why the result is "catastrophic" rather than noise.

This is the analysis that motivates converting the errors into LSB
truncation: violations concentrate in the *upper* product bits, the
exact opposite of where a controlled approximation puts its loss.
"""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.approx import TimedComponentModel
from repro.rtl import WallaceMultiplier
from repro.sim import bits_to_int
from repro.sta import timing_wall

VECTORS = 10000


def test_ext_error_anatomy(benchmark, lib, show):
    component = WallaceMultiplier(32, final_adder="ks")
    model = TimedComponentModel(component, lib, scenario=worst_case(10))
    operands = component.random_operands(VECTORS, rng=77)

    def dissect():
        wall = timing_wall(model.netlist, lib, scenario=worst_case(10))
        result = model.apply_detailed(*operands)
        per_bit = result.violations.mean(axis=0)
        sampled = bits_to_int(result.sampled, signed=True)
        settled = bits_to_int(result.settled, signed=True)
        wrong = sampled != settled
        rel_err = np.abs(sampled[wrong] - settled[wrong]) \
            / np.maximum(np.abs(settled[wrong]), 1)
        return wall, per_bit, float(wrong.mean()), rel_err

    wall, per_bit, error_rate, rel_err = benchmark.pedantic(
        dissect, rounds=1, iterations=1)

    first_bad = int(np.argmax(per_bit > 0))
    worst_bit = int(np.argmax(per_bit))
    rows = [
        "timing wall: %.0f%% of gates within 10%% of the %.1f ps "
        "critical path"
        % (100 * wall.fraction_within(0.10), wall.critical_path_ps),
        "slack distribution (normalized):",
    ]
    rows.extend("  " + line
                for line in wall.text_histogram(bins=5,
                                                width=30).splitlines())
    rows.append("violations start at product bit %d; worst bit %d "
                "(%.1f%% of cycles)"
                % (first_bad, worst_bit, 100 * per_bit[worst_bit]))
    p95 = 100 * float(np.percentile(rel_err, 95)) if rel_err.size else 0
    worst_rel = 100 * float(rel_err.max()) if rel_err.size else 0
    rows.append("word error rate %.1f%%; wrong-word relative error: "
                "p95 %.2f%%, worst %.0f%%"
                % (100 * error_rate, p95, worst_rel))
    rows.append("-> errors strike the UPPER product bits with "
                "input-dependent, unbounded magnitude,")
    rows.append("   while truncation confines loss to chosen LSBs with "
                "a fixed bound: the paper's pitch")
    show("Extension / anatomy of guardband-free timing errors", rows)

    # Violations live in the upper part of the product (the lower third
    # of the bits never violates) and peak toward the MSBs.
    assert first_bad >= component.output_width // 3
    assert per_bit[:component.output_width // 3].max() == 0.0
    assert worst_bit >= component.output_width // 2
    # And wrong words can be catastrophically wrong (the worst exceeds
    # 10% relative error), with magnitudes spread over many decades --
    # the unbounded, input-dependent behaviour truncation replaces.
    if rel_err.size:
        assert rel_err.max() > 0.1
        assert rel_err.min() < 1e-3
    benchmark.extra_info["first_violating_bit"] = first_bad
    benchmark.extra_info["word_error_rate"] = round(100 * error_rate, 2)
