#!/usr/bin/env python
"""Benchmark: sample-axis batched Monte Carlo STA vs the scalar loop.

Times the Monte Carlo variation workload on the paper's 16-bit
multiplier over a six-corner aging grid: per-gate Vth draws
(:mod:`repro.mc.variation`) feeding the vectorized
``(gates, corners, samples)`` delay-tensor path of
:func:`repro.mc.analyze_mc`, against the per-sample scalar-loop
baseline :func:`repro.mc.analyze_mc_reference` (one scalar BTI-model
call per (gate, corner, sample), one propagation per sample) timed on
a subsample and extrapolated per sample. The acceptance floor is a
>= 20x speedup (``min_mc_speedup``, regression-gated by
``repro bench-report --check``).

Correctness is gated before anything is timed:

* ``sigma = 0`` sampled arrivals and critical paths are **bit
  identical** (``==``, no epsilon) to the deterministic
  :func:`repro.sta.engine.analyze_batch`;
* the vectorized path matches the scalar-loop oracle draw-for-draw at
  ``rtol = 1e-12`` on a subsample;
* ``run_mc`` under ``--jobs 1`` and ``--jobs 2`` produces identical
  ``to_dict()`` results (bit-reproducibility).

Results append to ``BENCH_mc.json`` (see ``bench_util``).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_mc.py
"""

import argparse
import contextlib
import time
import tracemalloc

import bench_util
from repro.cells import default_library
from repro.core.specs import parse_scenario
from repro.mc import MCSpec, VariationModel, analyze_mc, \
    analyze_mc_reference, run_mc
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.rtl import Multiplier
from repro.sta.engine import analyze_batch, compile_timing
from repro.synth import synthesize_netlist

SCENARIOS = ("fresh", "worst1y", "worst5y", "worst10y", "balance5y",
             "balance10y")


def best_time(fn, repeats):
    """Best-of-*repeats* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def traced_peak(fn):
    """Peak traced allocation of one ``fn()`` call in bytes."""
    tracemalloc.start()
    try:
        fn()
        __current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=16,
                        help="multiplier operand width (default 16)")
    parser.add_argument("--samples", type=int, default=2048,
                        help="Monte Carlo samples (default 2048)")
    parser.add_argument("--ref-samples", type=int, default=8,
                        help="samples for the scalar reference timing "
                             "subsample (default 8)")
    parser.add_argument("--sigma", type=float, default=30.0,
                        help="per-gate Vth sigma in mV (default 30)")
    parser.add_argument("--seed", type=int, default=20170618,
                        help="variation seed (default 20170618)")
    parser.add_argument("--effort", default="high",
                        help="synthesis effort (default high)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--out", default="BENCH_mc.json",
                        help="output JSON trajectory path")
    parser.add_argument("--trace", default=None,
                        help="also write a Chrome trace of the benchmark "
                             "run (plus a run manifest next to it)")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    tracer = obs_trace.Tracer() if args.trace else None
    with contextlib.ExitStack() as stack:
        registry = stack.enter_context(obs_metrics.scoped())
        if tracer is not None:
            stack.enter_context(obs_trace.capture(tracer))
            stack.enter_context(obs_trace.span(
                "benchmark.mc", width=args.width, samples=args.samples,
                corners=len(SCENARIOS)))
        report = _run(args)
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print("trace written to %s (%d spans)" % (args.trace, len(tracer)))
        manifest = obs_manifest.build_manifest(
            "benchmarks/perf_mc.py",
            config={"width": args.width, "samples": args.samples,
                    "sigma_mv": args.sigma, "seed": args.seed,
                    "effort": args.effort, "repeats": args.repeats},
            library=default_library(),
            stages=tracer.totals(),
            metrics=registry.snapshot(),
            duration_s=time.perf_counter() - t_start,
            extra={"benchmark": report},
        )
        manifest_path = obs_manifest.default_manifest_path(args.trace)
        obs_manifest.write_manifest(manifest_path, manifest)
        print("run manifest written to %s" % manifest_path)
    return report


def _run(args):
    import numpy as np

    lib = default_library()
    component = Multiplier(args.width)
    corners = tuple(parse_scenario(s) for s in SCENARIOS)
    print("synthesizing %s (effort=%s)..." % (component.name, args.effort))
    netlist = synthesize_netlist(component, lib, effort=args.effort)
    program = compile_timing(netlist, lib)
    batch = analyze_batch(netlist, lib, corners, program=program)
    print("%d gates, %d corners, fresh critical path %.2f ps"
          % (program.n_gates, len(corners),
             float(batch.critical_path_ps[0])))

    variation = VariationModel(sigma_mv=args.sigma, seed=args.seed)

    # -- correctness gates (never benchmark a wrong engine) ----------------
    zero = analyze_mc(netlist, lib, corners, VariationModel(sigma_mv=0.0,
                                                            seed=args.seed),
                      samples=4, program=program, keep_arrivals=True)
    if not ((zero.critical_path_ps == batch.critical_path_ps[:, None]).all()
            and (zero.arrivals == batch.arrivals[:, :, None]).all()):
        raise SystemExit("sigma = 0 sampled analysis is not bit-identical "
                         "to the deterministic analyze_batch")

    ref_n = min(args.ref_samples, args.samples)
    fast_sub = analyze_mc(netlist, lib, corners, variation, samples=ref_n,
                          program=program)
    slow_sub = analyze_mc_reference(netlist, lib, corners, variation,
                                    samples=ref_n, program=program)
    if not np.allclose(fast_sub.critical_path_ps, slow_sub, rtol=1e-12,
                       atol=0.0):
        raise SystemExit("vectorized engine disagrees with the scalar "
                         "reference on a %d-sample subsample" % ref_n)

    spec = MCSpec(component="multiplier", width=args.width,
                  scenarios=SCENARIOS, clock_scales=(1.0,),
                  sigma_mv=args.sigma, samples=256, seed=args.seed,
                  sweep_bits=0, effort=args.effort)
    if run_mc(spec, library=lib, jobs=1).to_dict() \
            != run_mc(spec, library=lib, jobs=2).to_dict():
        raise SystemExit("run_mc is not bit-identical across --jobs 1/2")
    print("correctness gates passed: sigma=0 bit-identical, vectorized == "
          "scalar reference on %d samples, jobs-deterministic" % ref_n)

    # -- timings -----------------------------------------------------------
    def vectorized():
        analyze_mc(netlist, lib, corners, variation, samples=args.samples,
                   program=program)

    def scalar_reference():
        analyze_mc_reference(netlist, lib, corners, variation,
                             samples=ref_n, program=program)

    results = {}
    for label, fn, n in [
        ("vectorized_mc", vectorized, args.samples),
        ("scalar_reference", scalar_reference, ref_n),
    ]:
        with obs_trace.span("bench." + label, repeats=args.repeats):
            seconds = best_time(fn, args.repeats)
            peak = traced_peak(fn)
        results[label] = {"seconds": seconds, "peak_bytes": peak,
                          "samples": n}
        print("%-18s %8.3f s   %8.1f samples/s   peak %7.1f MiB"
              % (label, seconds, n / seconds, peak / 2**20))

    per_sample_fast = results["vectorized_mc"]["seconds"] / args.samples
    per_sample_slow = results["scalar_reference"]["seconds"] / ref_n
    mc_speedup = per_sample_slow / per_sample_fast
    samples_per_sec = args.samples / results["vectorized_mc"]["seconds"]
    print("vectorized MC: %.0f samples/s over %d corners; %.1fx over the "
          "per-sample scalar loop (floor >= 20x)"
          % (samples_per_sec, len(corners), mc_speedup))

    report = {
        "benchmark": "mc",
        "component": component.name,
        "width": args.width,
        "effort": args.effort,
        "scenarios": list(SCENARIOS),
        "gates": program.n_gates,
        "samples": args.samples,
        "ref_samples": ref_n,
        "sigma_mv": args.sigma,
        "seed": args.seed,
        "repeats": args.repeats,
        "results": results,
        "samples_per_sec": samples_per_sec,
        "mc_speedup": mc_speedup,
        "min_mc_speedup": 20.0,
        "target_mc_speedup": 50.0,
    }
    n_runs = bench_util.append_run(args.out, report)
    print("wrote %s (%d run(s) recorded)" % (args.out, n_runs))
    if mc_speedup < 20.0:
        raise SystemExit("Monte Carlo speedup %.1fx is below the 20x "
                         "floor" % mc_speedup)
    return report


if __name__ == "__main__":
    main()
